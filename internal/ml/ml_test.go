package ml

import (
	"math"
	"testing"

	"srcsim/internal/sim"
)

// synthDataset builds a noisy nonlinear dataset y = 3x0 - 2x1 + x0*x1 + ε.
func synthDataset(n int, seed uint64) ([][]float64, []float64) {
	rng := sim.NewRNG(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x0 := rng.Float64() * 10
		x1 := rng.Float64() * 10
		x2 := rng.Float64() // irrelevant feature
		X[i] = []float64{x0, x1, x2}
		y[i] = 3*x0 - 2*x1 + x0*x1 + rng.Norm(0, 0.5)
	}
	return X, y
}

// linearDataset is exactly linear: y = 2x0 + 5x1 - 7.
func linearDataset(n int, seed uint64) ([][]float64, []float64) {
	rng := sim.NewRNG(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x0, x1 := rng.Float64()*4-2, rng.Float64()*4-2
		X[i] = []float64{x0, x1}
		y[i] = 2*x0 + 5*x1 - 7
	}
	return X, y
}

func TestCheckXYErrors(t *testing.T) {
	cases := map[string]struct {
		X [][]float64
		y []float64
	}{
		"empty":        {nil, nil},
		"len mismatch": {[][]float64{{1}}, []float64{1, 2}},
		"zero width":   {[][]float64{{}}, []float64{1}},
		"ragged":       {[][]float64{{1, 2}, {1}}, []float64{1, 2}},
		"nan feature":  {[][]float64{{math.NaN()}}, []float64{1}},
		"inf target":   {[][]float64{{1}}, []float64{math.Inf(1)}},
	}
	for name, c := range cases {
		if _, _, err := checkXY(c.X, c.y); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestCloneMatrix(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}}
	c := cloneMatrix(X)
	c[0][0] = 99
	if X[0][0] != 1 {
		t.Fatal("cloneMatrix aliases input")
	}
	if cloneMatrix(nil) != nil {
		t.Fatal("nil clone")
	}
}

func TestStandardizer(t *testing.T) {
	X := [][]float64{{1, 100, 5}, {3, 100, 5}, {5, 100, 5}}
	s := FitStandardizer(X)
	tx := s.TransformAll(X)
	// Column 0: mean 3, values -> symmetric.
	if math.Abs(tx[0][0]+tx[2][0]) > 1e-12 || tx[1][0] != 0 {
		t.Fatalf("standardize col0: %v", tx)
	}
	// Constant columns map to 0 (std forced to 1).
	for i := range tx {
		if tx[i][1] != 0 || tx[i][2] != 0 {
			t.Fatalf("constant columns should map to 0: %v", tx[i])
		}
	}
}

func TestR2(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if R2(y, y) != 1 {
		t.Fatal("perfect prediction R2 != 1")
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if math.Abs(R2(y, mean)) > 1e-12 {
		t.Fatal("mean prediction R2 != 0")
	}
	worse := []float64{4, 3, 2, 1}
	if R2(y, worse) >= 0 {
		t.Fatal("anti-correlated prediction should have negative R2")
	}
	// Constant truth edge cases.
	c := []float64{5, 5}
	if R2(c, c) != 1 {
		t.Fatal("constant exact")
	}
	if R2(c, []float64{5, 6}) != 0 {
		t.Fatal("constant inexact")
	}
}

func TestMSEAndMAE(t *testing.T) {
	y := []float64{0, 0}
	yhat := []float64{3, -3}
	if MSE(y, yhat) != 9 {
		t.Fatalf("MSE = %v", MSE(y, yhat))
	}
	if MAE(y, yhat) != 3 {
		t.Fatalf("MAE = %v", MAE(y, yhat))
	}
}

func TestMetricsPanicOnMismatch(t *testing.T) {
	for name, fn := range map[string]func(){
		"R2":  func() { R2([]float64{1}, []float64{1, 2}) },
		"MSE": func() { MSE(nil, nil) },
		"MAE": func() { MAE([]float64{1}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLinearRegressionRecoversCoefficients(t *testing.T) {
	X, y := linearDataset(500, 1)
	lr := &LinearRegression{}
	if err := lr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(lr.Coef[0]-2) > 1e-6 || math.Abs(lr.Coef[1]-5) > 1e-6 {
		t.Fatalf("coef = %v, want [2 5]", lr.Coef)
	}
	if math.Abs(lr.Intercept+7) > 1e-6 {
		t.Fatalf("intercept = %v, want -7", lr.Intercept)
	}
	if r2 := R2(y, PredictAll(lr, X)); r2 < 0.999999 {
		t.Fatalf("R2 = %v on exact linear data", r2)
	}
}

func TestLinearRegressionSingularHandled(t *testing.T) {
	// Duplicate columns: ridge stabiliser must keep the solve finite.
	X := [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	y := []float64{2, 4, 6, 8}
	lr := &LinearRegression{}
	if err := lr.Fit(X, y); err != nil {
		t.Fatalf("collinear fit failed: %v", err)
	}
	if p := lr.Predict([]float64{5, 5}); math.Abs(p-10) > 1e-3 {
		t.Fatalf("collinear predict %v, want 10", p)
	}
}

func TestPredictBeforeFitPanics(t *testing.T) {
	regs := []Regressor{
		&LinearRegression{},
		&PolynomialRegression{},
		&KNNRegressor{},
		&DecisionTreeRegressor{},
		&RandomForestRegressor{},
	}
	for _, r := range regs {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Predict before Fit should panic", r.Name())
				}
			}()
			r.Predict([]float64{1})
		}()
	}
}

func TestPolynomialCapturesInteraction(t *testing.T) {
	X, y := synthDataset(800, 2)
	lin := &LinearRegression{}
	poly := &PolynomialRegression{}
	if err := lin.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := poly.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	r2Lin := R2(y, PredictAll(lin, X))
	r2Poly := R2(y, PredictAll(poly, X))
	if r2Poly < 0.99 {
		t.Fatalf("poly R2 = %v on quadratic data", r2Poly)
	}
	if r2Poly <= r2Lin {
		t.Fatalf("poly (%v) should beat linear (%v) on interaction data", r2Poly, r2Lin)
	}
}

func TestExpandPoly2(t *testing.T) {
	got := expandPoly2([]float64{2, 3}, nil)
	want := []float64{2, 3, 4, 6, 9} // x0, x1, x0², x0x1, x1²
	if len(got) != len(want) {
		t.Fatalf("expand len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("expand = %v, want %v", got, want)
		}
	}
}

func TestKNNExactNeighbours(t *testing.T) {
	X := [][]float64{{0}, {1}, {10}, {11}}
	y := []float64{0, 2, 10, 12}
	knn := &KNNRegressor{K: 2}
	if err := knn.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if p := knn.Predict([]float64{0.4}); p != 1 {
		t.Fatalf("knn near {0,1} = %v, want 1", p)
	}
	if p := knn.Predict([]float64{10.6}); p != 11 {
		t.Fatalf("knn near {10,11} = %v, want 11", p)
	}
}

func TestKNNKLargerThanN(t *testing.T) {
	knn := &KNNRegressor{K: 50}
	if err := knn.Fit([][]float64{{0}, {1}}, []float64{4, 6}); err != nil {
		t.Fatal(err)
	}
	if p := knn.Predict([]float64{0.5}); p != 5 {
		t.Fatalf("knn with K>n = %v, want mean 5", p)
	}
}

func TestDecisionTreePerfectOnTrainingData(t *testing.T) {
	X, y := synthDataset(300, 3)
	dt := &DecisionTreeRegressor{MaxDepth: 30, MinLeaf: 1}
	if err := dt.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(y, PredictAll(dt, X)); r2 < 0.999 {
		t.Fatalf("unbounded tree train R2 = %v", r2)
	}
	if dt.LeafCount() < 100 {
		t.Fatalf("leaf count %d suspiciously small", dt.LeafCount())
	}
}

func TestDecisionTreeRespectsMaxDepth(t *testing.T) {
	X, y := synthDataset(500, 4)
	dt := &DecisionTreeRegressor{MaxDepth: 3}
	if err := dt.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if d := dt.Depth(); d > 3 {
		t.Fatalf("depth %d exceeds MaxDepth 3", d)
	}
	if lc := dt.LeafCount(); lc > 8 {
		t.Fatalf("leaf count %d exceeds 2^3", lc)
	}
}

func TestDecisionTreeConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{5, 5, 5, 5}
	dt := &DecisionTreeRegressor{}
	if err := dt.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if dt.Depth() != 0 {
		t.Fatalf("constant target should not split, depth %d", dt.Depth())
	}
	if p := dt.Predict([]float64{99}); p != 5 {
		t.Fatalf("constant predict %v", p)
	}
}

func TestDecisionTreeGeneralizes(t *testing.T) {
	X, y := synthDataset(2000, 5)
	Xtest, ytest := synthDataset(500, 6)
	dt := &DecisionTreeRegressor{MinLeaf: 5}
	if err := dt.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(ytest, PredictAll(dt, Xtest)); r2 < 0.95 {
		t.Fatalf("tree test R2 = %v", r2)
	}
}

func TestForestBeatsOrMatchesTree(t *testing.T) {
	X, y := synthDataset(1500, 7)
	Xtest, ytest := synthDataset(500, 8)
	dt := &DecisionTreeRegressor{MinLeaf: 5, Seed: 1}
	rf := &RandomForestRegressor{Trees: 60, MinLeaf: 5, Seed: 1}
	if err := dt.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := rf.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	r2T := R2(ytest, PredictAll(dt, Xtest))
	r2F := R2(ytest, PredictAll(rf, Xtest))
	if r2F < r2T-0.02 {
		t.Fatalf("forest (%v) should not lose to single tree (%v)", r2F, r2T)
	}
	if r2F < 0.95 {
		t.Fatalf("forest test R2 = %v", r2F)
	}
}

func TestForestDeterministicAcrossRuns(t *testing.T) {
	X, y := synthDataset(400, 9)
	fit := func() []float64 {
		rf := &RandomForestRegressor{Trees: 20, Seed: 42}
		if err := rf.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 10)
		for i := range out {
			out[i] = rf.Predict(X[i])
		}
		return out
	}
	a, b := fit(), fit()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("forest not deterministic despite fixed seed: %v vs %v", a[i], b[i])
		}
	}
}

func TestForestFeatureImportances(t *testing.T) {
	// x0 and x1 drive y; x2 is noise. Importances must reflect that and
	// sum to 1 (Breiman normalisation).
	X, y := synthDataset(1500, 10)
	rf := &RandomForestRegressor{Trees: 40, Seed: 3}
	if err := rf.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp := rf.FeatureImportances()
	var total float64
	for _, v := range imp {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("importances sum %v, want 1", total)
	}
	if imp[2] > 0.1 {
		t.Fatalf("noise feature importance %v too high (%v)", imp[2], imp)
	}
	if imp[0] < 0.2 || imp[1] < 0.2 {
		t.Fatalf("signal features under-weighted: %v", imp)
	}
	rank := RankFeatures(imp)
	if rank[len(rank)-1] != 2 {
		t.Fatalf("noise feature should rank last: %v", rank)
	}
}

func TestTrainTestSplit(t *testing.T) {
	rng := sim.NewRNG(1)
	train, test := TrainTestSplit(100, 0.6, rng)
	if len(train) != 60 || len(test) != 40 {
		t.Fatalf("split sizes %d/%d", len(train), len(test))
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, train...), test...) {
		if seen[i] {
			t.Fatalf("index %d appears twice", i)
		}
		seen[i] = true
	}
	if len(seen) != 100 {
		t.Fatalf("split covers %d indices", len(seen))
	}
}

func TestTrainTestSplitEdges(t *testing.T) {
	rng := sim.NewRNG(1)
	train, test := TrainTestSplit(2, 0.01, rng)
	if len(train) != 1 || len(test) != 1 {
		t.Fatalf("tiny split %d/%d", len(train), len(test))
	}
	for _, fn := range []func(){
		func() { TrainTestSplit(0, 0.5, rng) },
		func() { TrainTestSplit(10, 0, rng) },
		func() { TrainTestSplit(10, 1, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestKFoldPartition(t *testing.T) {
	rng := sim.NewRNG(2)
	trains, tests := KFold(25, 4, rng)
	if len(trains) != 4 || len(tests) != 4 {
		t.Fatal("fold count")
	}
	seen := map[int]int{}
	for f := range tests {
		for _, i := range tests[f] {
			seen[i]++
		}
		if len(trains[f])+len(tests[f]) != 25 {
			t.Fatalf("fold %d sizes %d+%d", f, len(trains[f]), len(tests[f]))
		}
	}
	if len(seen) != 25 {
		t.Fatalf("test folds cover %d samples", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("sample %d in %d test folds", i, c)
		}
	}
}

func TestCrossValidateR2(t *testing.T) {
	X, y := linearDataset(200, 11)
	r2, err := CrossValidateR2(func() Regressor { return &LinearRegression{} }, X, y, 5, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.999 {
		t.Fatalf("CV R2 = %v on linear data", r2)
	}
}

func TestGroupedHoldOutR2(t *testing.T) {
	X, y := linearDataset(300, 12)
	groups := make([]int, len(X))
	for i := range groups {
		groups[i] = i % 3
	}
	r2, err := GroupedHoldOutR2(func() Regressor { return &LinearRegression{} }, X, y, groups, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.999 {
		t.Fatalf("grouped hold-out R2 = %v", r2)
	}
	// Missing group errors.
	if _, err := GroupedHoldOutR2(func() Regressor { return &LinearRegression{} }, X, y, groups, 99); err == nil {
		t.Fatal("absent group should error")
	}
	if _, err := GroupedHoldOutR2(func() Regressor { return &LinearRegression{} }, X, y, groups[:10], 1); err == nil {
		t.Fatal("label length mismatch should error")
	}
}

func TestTableIRegressorsRoster(t *testing.T) {
	regs := TableIRegressors(1)
	want := []string{
		"Linear Regression",
		"Polynomial Regression",
		"K-Nearest Neighbor",
		"Decision Tree Regression",
		"Random Forest Regression",
	}
	if len(regs) != len(want) {
		t.Fatalf("%d regressors", len(regs))
	}
	for i, r := range regs {
		if r.Name() != want[i] {
			t.Fatalf("row %d = %q, want %q", i, r.Name(), want[i])
		}
	}
}

// Ordering sanity on nonlinear data: the tree-based and local methods
// should beat plain linear regression, mirroring the qualitative ordering
// of Table I.
func TestTableIOrderingOnNonlinearData(t *testing.T) {
	X, y := synthDataset(1200, 13)
	Xtest, ytest := synthDataset(400, 14)
	scores := map[string]float64{}
	for _, r := range TableIRegressors(5) {
		if err := r.Fit(X, y); err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		scores[r.Name()] = R2(ytest, PredictAll(r, Xtest))
	}
	if scores["Random Forest Regression"] <= scores["Linear Regression"] {
		t.Fatalf("RF (%v) should beat linear (%v) on nonlinear data: %v",
			scores["Random Forest Regression"], scores["Linear Regression"], scores)
	}
	if scores["Decision Tree Regression"] <= scores["Linear Regression"] {
		t.Fatalf("DT should beat linear on nonlinear data: %v", scores)
	}
}

func BenchmarkForestFit(b *testing.B) {
	X, y := synthDataset(1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf := &RandomForestRegressor{Trees: 30, Seed: uint64(i)}
		if err := rf.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestPredict(b *testing.B) {
	X, y := synthDataset(1000, 1)
	rf := &RandomForestRegressor{Trees: 50, Seed: 1}
	if err := rf.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rf.Predict(X[i%len(X)])
	}
}

func BenchmarkKNNPredict(b *testing.B) {
	X, y := synthDataset(2000, 1)
	knn := &KNNRegressor{K: 5}
	if err := knn.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = knn.Predict(X[i%len(X)])
	}
}
