package ml

import (
	"fmt"
	"sort"

	"srcsim/internal/sim"
)

// DecisionTreeRegressor is a CART regression tree grown by greedy
// variance-reduction splitting. Table I row "Decision Tree Regression".
// The zero value uses sensible defaults; set fields before Fit to tune.
type DecisionTreeRegressor struct {
	// MaxDepth bounds tree depth (default 14).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 2).
	MinLeaf int
	// MinSplit is the minimum samples needed to attempt a split
	// (default 2*MinLeaf).
	MinSplit int
	// MaxFeatures limits how many randomly chosen features are examined
	// per split; 0 examines all (random forests set d/3).
	MaxFeatures int
	// Seed drives feature subsampling when MaxFeatures > 0.
	Seed uint64

	root       *treeNode
	d          int
	importance []float64 // raw SSE reduction per feature
	totalSSE   float64
	rng        *sim.RNG
	fitted     bool
}

type treeNode struct {
	feature     int // -1 for leaf
	threshold   float64
	left, right *treeNode
	value       float64
	n           int
}

// Name implements Regressor.
func (t *DecisionTreeRegressor) Name() string { return "Decision Tree Regression" }

func (t *DecisionTreeRegressor) defaults() {
	if t.MaxDepth <= 0 {
		t.MaxDepth = 14
	}
	if t.MinLeaf <= 0 {
		t.MinLeaf = 2
	}
	if t.MinSplit <= 0 {
		t.MinSplit = 2 * t.MinLeaf
	}
}

// Fit implements Regressor.
func (t *DecisionTreeRegressor) Fit(X [][]float64, y []float64) error {
	n, d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	t.defaults()
	t.d = d
	t.importance = make([]float64, d)
	t.rng = sim.NewRNG(t.Seed ^ 0x9e3779b97f4a7c15)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(X, y, idx, 0)
	t.fitted = true
	return nil
}

// sseOf returns (sum, sse) of y over idx.
func sseOf(y []float64, idx []int) (sum, sse float64) {
	for _, i := range idx {
		sum += y[i]
	}
	mean := sum / float64(len(idx))
	for _, i := range idx {
		d := y[i] - mean
		sse += d * d
	}
	return sum, sse
}

func (t *DecisionTreeRegressor) build(X [][]float64, y []float64, idx []int, depth int) *treeNode {
	sum, sse := sseOf(y, idx)
	node := &treeNode{feature: -1, value: sum / float64(len(idx)), n: len(idx)}
	if depth == 0 {
		t.totalSSE = sse
	}
	if depth >= t.MaxDepth || len(idx) < t.MinSplit || sse <= 1e-12 {
		return node
	}

	bestFeature, bestThreshold, bestGain := -1, 0.0, 0.0
	var bestSplit int

	features := t.candidateFeatures()
	// Sorted index buffer reused across features.
	order := make([]int, len(idx))
	for _, f := range features {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		// Prefix scan of sums to evaluate every boundary in O(n).
		var leftSum, leftSq float64
		totalSq := 0.0
		for _, i := range order {
			totalSq += y[i] * y[i]
		}
		totalSum := sum
		nTot := float64(len(order))
		for k := 0; k < len(order)-1; k++ {
			yi := y[order[k]]
			leftSum += yi
			leftSq += yi * yi
			// Can't split between equal feature values.
			if X[order[k]][f] == X[order[k+1]][f] {
				continue
			}
			nl := float64(k + 1)
			nr := nTot - nl
			if int(nl) < t.MinLeaf || int(nr) < t.MinLeaf {
				continue
			}
			sseL := leftSq - leftSum*leftSum/nl
			rightSum := totalSum - leftSum
			sseR := (totalSq - leftSq) - rightSum*rightSum/nr
			gain := sse - sseL - sseR
			if gain > bestGain {
				bestGain = gain
				bestFeature = f
				bestThreshold = (X[order[k]][f] + X[order[k+1]][f]) / 2
				bestSplit = k + 1
			}
		}
		_ = bestSplit
	}

	if bestFeature < 0 || bestGain <= 1e-12 {
		return node
	}

	t.importance[bestFeature] += bestGain

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if X[i][bestFeature] <= bestThreshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	node.feature = bestFeature
	node.threshold = bestThreshold
	node.left = t.build(X, y, leftIdx, depth+1)
	node.right = t.build(X, y, rightIdx, depth+1)
	return node
}

// candidateFeatures returns the features to examine at a split: all of
// them, or a random subset of size MaxFeatures.
func (t *DecisionTreeRegressor) candidateFeatures() []int {
	if t.MaxFeatures <= 0 || t.MaxFeatures >= t.d {
		all := make([]int, t.d)
		for i := range all {
			all[i] = i
		}
		return all
	}
	perm := t.rng.Perm(t.d)
	return perm[:t.MaxFeatures]
}

// Predict implements Regressor.
func (t *DecisionTreeRegressor) Predict(x []float64) float64 {
	if !t.fitted {
		panic("ml: DecisionTreeRegressor.Predict before Fit")
	}
	if len(x) != t.d {
		panic(fmt.Sprintf("ml: predict with %d features, trained on %d", len(x), t.d))
	}
	node := t.root
	for node.feature >= 0 {
		if x[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.value
}

// Depth returns the height of the fitted tree (leaf-only tree = 0).
func (t *DecisionTreeRegressor) Depth() int {
	var walk func(*treeNode) int
	walk = func(n *treeNode) int {
		if n == nil || n.feature < 0 {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(t.root)
}

// LeafCount returns the number of leaves in the fitted tree.
func (t *DecisionTreeRegressor) LeafCount() int {
	var walk func(*treeNode) int
	walk = func(n *treeNode) int {
		if n == nil {
			return 0
		}
		if n.feature < 0 {
			return 1
		}
		return walk(n.left) + walk(n.right)
	}
	return walk(t.root)
}

// FeatureImportances returns the normalized SSE-reduction attributed to
// each feature (sums to 1 when any split occurred) — Breiman importance.
func (t *DecisionTreeRegressor) FeatureImportances() []float64 {
	out := make([]float64, len(t.importance))
	var total float64
	for _, v := range t.importance {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range t.importance {
		out[i] = v / total
	}
	return out
}
