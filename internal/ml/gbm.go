package ml

import "fmt"

// GradientBoostingRegressor fits an additive ensemble of shallow CART
// trees by gradient boosting with squared loss: each round fits a tree
// to the current residuals and adds it scaled by the learning rate.
// It is not part of the paper's Table I roster but is the natural next
// model an adopter would try for the TPM; see the example and the
// comparison test.
type GradientBoostingRegressor struct {
	// Rounds is the number of boosting stages (default 100).
	Rounds int
	// LearningRate shrinks each stage's contribution (default 0.1).
	LearningRate float64
	// MaxDepth bounds each stage's tree (default 3 — stumps-plus).
	MaxDepth int
	// MinLeaf is the per-leaf sample floor (default 2).
	MinLeaf int
	// Seed drives the per-stage tree randomness.
	Seed uint64

	base   float64
	trees  []*DecisionTreeRegressor
	d      int
	fitted bool
}

// Name implements Regressor.
func (g *GradientBoostingRegressor) Name() string { return "Gradient Boosting Regression" }

// Fit implements Regressor.
func (g *GradientBoostingRegressor) Fit(X [][]float64, y []float64) error {
	n, d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	if g.Rounds <= 0 {
		g.Rounds = 100
	}
	if g.LearningRate <= 0 {
		g.LearningRate = 0.1
	}
	if g.MaxDepth <= 0 {
		g.MaxDepth = 3
	}
	g.d = d

	// Base prediction: the mean.
	var mean float64
	for _, v := range y {
		mean += v
	}
	g.base = mean / float64(n)

	residual := make([]float64, n)
	current := make([]float64, n)
	for i := range current {
		current[i] = g.base
	}

	g.trees = g.trees[:0]
	for round := 0; round < g.Rounds; round++ {
		for i := range residual {
			residual[i] = y[i] - current[i]
		}
		tree := &DecisionTreeRegressor{
			MaxDepth: g.MaxDepth,
			MinLeaf:  g.MinLeaf,
			Seed:     g.Seed + uint64(round)*2654435761,
		}
		if err := tree.Fit(X, residual); err != nil {
			return fmt.Errorf("ml: boosting round %d: %w", round, err)
		}
		g.trees = append(g.trees, tree)
		for i, row := range X {
			current[i] += g.LearningRate * tree.Predict(row)
		}
	}
	g.fitted = true
	return nil
}

// Predict implements Regressor.
func (g *GradientBoostingRegressor) Predict(x []float64) float64 {
	if !g.fitted {
		panic("ml: GradientBoostingRegressor.Predict before Fit")
	}
	if len(x) != g.d {
		panic(fmt.Sprintf("ml: predict with %d features, trained on %d", len(x), g.d))
	}
	s := g.base
	for _, t := range g.trees {
		s += g.LearningRate * t.Predict(x)
	}
	return s
}
