package ml

import (
	"fmt"
	"math"
	"sort"

	"srcsim/internal/sim"
)

// R2 returns the coefficient of determination of predictions yhat against
// truth y — the "accuracy" metric of the paper's Tables I and III. A
// perfect predictor scores 1; predicting the mean scores 0; worse is
// negative. Constant y yields R2 = 0 unless predictions are exact.
func R2(y, yhat []float64) float64 {
	if len(y) != len(yhat) || len(y) == 0 {
		panic(fmt.Sprintf("ml: R2 length mismatch %d vs %d", len(y), len(yhat)))
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssRes, ssTot float64
	for i := range y {
		d := y[i] - yhat[i]
		ssRes += d * d
		t := y[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// MSE returns the mean squared error.
func MSE(y, yhat []float64) float64 {
	if len(y) != len(yhat) || len(y) == 0 {
		panic(fmt.Sprintf("ml: MSE length mismatch %d vs %d", len(y), len(yhat)))
	}
	var s float64
	for i := range y {
		d := y[i] - yhat[i]
		s += d * d
	}
	return s / float64(len(y))
}

// MAE returns the mean absolute error.
func MAE(y, yhat []float64) float64 {
	if len(y) != len(yhat) || len(y) == 0 {
		panic(fmt.Sprintf("ml: MAE length mismatch %d vs %d", len(y), len(yhat)))
	}
	var s float64
	for i := range y {
		s += math.Abs(y[i] - yhat[i])
	}
	return s / float64(len(y))
}

// PredictAll applies a fitted regressor to every row of X.
func PredictAll(r Regressor, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		out[i] = r.Predict(row)
	}
	return out
}

// TrainTestSplit shuffles indices with rng and splits them so that
// trainFrac of the samples land in the training set (the paper's 60/40
// protocol for Table I). At least one sample lands on each side when
// n >= 2.
func TrainTestSplit(n int, trainFrac float64, rng *sim.RNG) (train, test []int) {
	if n <= 0 {
		panic("ml: TrainTestSplit with no samples")
	}
	if trainFrac <= 0 || trainFrac >= 1 {
		panic(fmt.Sprintf("ml: trainFrac %v must be in (0,1)", trainFrac))
	}
	perm := rng.Perm(n)
	k := int(float64(n) * trainFrac)
	if k < 1 {
		k = 1
	}
	if k >= n {
		k = n - 1
	}
	return perm[:k], perm[k:]
}

// Gather selects the given rows of X and y.
func Gather(X [][]float64, y []float64, idx []int) ([][]float64, []float64) {
	gx := make([][]float64, len(idx))
	gy := make([]float64, len(idx))
	for i, ix := range idx {
		gx[i] = X[ix]
		gy[i] = y[ix]
	}
	return gx, gy
}

// KFold returns k (train, test) index partitions after a shuffle. Every
// sample appears in exactly one test fold.
func KFold(n, k int, rng *sim.RNG) (trains, tests [][]int) {
	if k < 2 || k > n {
		panic(fmt.Sprintf("ml: KFold k=%d invalid for n=%d", k, n))
	}
	perm := rng.Perm(n)
	folds := make([][]int, k)
	for i, p := range perm {
		folds[i%k] = append(folds[i%k], p)
	}
	for i := 0; i < k; i++ {
		var train []int
		for j := 0; j < k; j++ {
			if j != i {
				train = append(train, folds[j]...)
			}
		}
		trains = append(trains, train)
		tests = append(tests, folds[i])
	}
	return trains, tests
}

// CrossValidateR2 runs k-fold cross validation, fitting a fresh regressor
// from factory per fold, and returns the mean test R².
func CrossValidateR2(factory func() Regressor, X [][]float64, y []float64, k int, rng *sim.RNG) (float64, error) {
	trains, tests := KFold(len(X), k, rng)
	var sum float64
	for i := range trains {
		reg := factory()
		tx, ty := Gather(X, y, trains[i])
		if err := reg.Fit(tx, ty); err != nil {
			return 0, fmt.Errorf("ml: fold %d fit: %w", i, err)
		}
		vx, vy := Gather(X, y, tests[i])
		sum += R2(vy, PredictAll(reg, vx))
	}
	return sum / float64(len(trains)), nil
}

// GroupedHoldOutR2 implements the paper's Table III protocol: hold out
// every sample whose group equals holdGroup for validation and train on
// everything else. It returns the validation R².
func GroupedHoldOutR2(factory func() Regressor, X [][]float64, y []float64, groups []int, holdGroup int) (float64, error) {
	if len(groups) != len(X) {
		return 0, fmt.Errorf("ml: %d group labels for %d samples", len(groups), len(X))
	}
	var trainIdx, testIdx []int
	for i, g := range groups {
		if g == holdGroup {
			testIdx = append(testIdx, i)
		} else {
			trainIdx = append(trainIdx, i)
		}
	}
	if len(testIdx) == 0 || len(trainIdx) == 0 {
		return 0, fmt.Errorf("ml: group %d leaves train=%d test=%d", holdGroup, len(trainIdx), len(testIdx))
	}
	reg := factory()
	tx, ty := Gather(X, y, trainIdx)
	if err := reg.Fit(tx, ty); err != nil {
		return 0, err
	}
	vx, vy := Gather(X, y, testIdx)
	return R2(vy, PredictAll(reg, vx)), nil
}

// RankFeatures returns feature indices sorted by descending importance.
func RankFeatures(importance []float64) []int {
	idx := make([]int, len(importance))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return importance[idx[a]] > importance[idx[b]] })
	return idx
}
