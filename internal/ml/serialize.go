package ml

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math"
)

// Serialization uses flattened, exported DTOs so fitted tree ensembles
// can be stored with encoding/gob and reloaded without retraining (TPM
// training is the slowest step of every experiment CLI).

// treeDTO is a flattened CART tree: node i's children are Left[i] and
// Right[i] (-1 for leaves). Importance carries the fit-time SSE
// reductions per feature so a reloaded ensemble reports the same
// Breiman importances as the freshly trained one.
type treeDTO struct {
	Feature    []int32
	Threshold  []float64
	Left       []int32
	Right      []int32
	Value      []float64
	Importance []float64
	D          int
}

func flattenTree(t *DecisionTreeRegressor) treeDTO {
	dto := treeDTO{D: t.d, Importance: append([]float64(nil), t.importance...)}
	var walk func(n *treeNode) int32
	walk = func(n *treeNode) int32 {
		idx := int32(len(dto.Feature))
		dto.Feature = append(dto.Feature, int32(n.feature))
		dto.Threshold = append(dto.Threshold, n.threshold)
		dto.Left = append(dto.Left, -1)
		dto.Right = append(dto.Right, -1)
		dto.Value = append(dto.Value, n.value)
		if n.feature >= 0 {
			dto.Left[idx] = walk(n.left)
			dto.Right[idx] = walk(n.right)
		}
		return idx
	}
	if t.root != nil {
		walk(t.root)
	}
	return dto
}

func (dto treeDTO) restore() (*DecisionTreeRegressor, error) {
	n := len(dto.Feature)
	if n == 0 {
		return nil, fmt.Errorf("ml: empty tree")
	}
	if dto.D <= 0 {
		return nil, fmt.Errorf("ml: tree dimension %d", dto.D)
	}
	if len(dto.Threshold) != n || len(dto.Left) != n || len(dto.Right) != n || len(dto.Value) != n {
		return nil, fmt.Errorf("ml: ragged tree arrays")
	}
	nodes := make([]treeNode, n)
	for i := 0; i < n; i++ {
		if !finite(dto.Value[i]) {
			return nil, fmt.Errorf("ml: node %d has non-finite value", i)
		}
		nodes[i] = treeNode{
			feature:   int(dto.Feature[i]),
			threshold: dto.Threshold[i],
			value:     dto.Value[i],
		}
		if dto.Feature[i] >= 0 {
			if int(dto.Feature[i]) >= dto.D {
				return nil, fmt.Errorf("ml: node %d splits on feature %d, dimension %d", i, dto.Feature[i], dto.D)
			}
			if !finite(dto.Threshold[i]) {
				return nil, fmt.Errorf("ml: node %d has non-finite threshold", i)
			}
			l, r := dto.Left[i], dto.Right[i]
			// flattenTree emits preorder, so a valid file always has
			// children strictly after their parent; requiring l,r > i
			// also makes cycles (which would hang Predict) impossible.
			if int(l) <= i || int(r) <= i || int(l) >= n || int(r) >= n {
				return nil, fmt.Errorf("ml: node %d child index out of range (%d, %d)", i, l, r)
			}
			nodes[i].left = &nodes[l]
			nodes[i].right = &nodes[r]
		}
	}
	t := &DecisionTreeRegressor{d: dto.D, root: &nodes[0], fitted: true}
	t.defaults()
	if len(dto.Importance) == dto.D {
		t.importance = append([]float64(nil), dto.Importance...)
	} else {
		// Pre-importance files: decode cleanly with zero importances.
		t.importance = make([]float64, dto.D)
	}
	return t, nil
}

// finite rejects NaN and ±Inf — a fitted tree can never contain them,
// so their presence in a file means corruption.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// forestDTO is the storable form of a fitted random forest.
type forestDTO struct {
	Trees []treeDTO
	D     int
}

// MarshalBinary implements encoding.BinaryMarshaler, so a fitted forest
// embeds cleanly in any gob stream, feature importances included.
func (f *RandomForestRegressor) MarshalBinary() ([]byte, error) {
	if !f.fitted {
		return nil, fmt.Errorf("ml: MarshalBinary before Fit")
	}
	dto := forestDTO{D: f.d}
	for _, t := range f.trees {
		dto.Trees = append(dto.Trees, flattenTree(t))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(dto); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (f *RandomForestRegressor) UnmarshalBinary(data []byte) error {
	var dto forestDTO
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&dto); err != nil {
		return fmt.Errorf("ml: decode forest: %w", err)
	}
	if len(dto.Trees) == 0 {
		return fmt.Errorf("ml: forest with no trees")
	}
	if dto.D <= 0 {
		return fmt.Errorf("ml: forest dimension %d", dto.D)
	}
	f.Trees = len(dto.Trees)
	f.d = dto.D
	f.trees = f.trees[:0]
	for i, td := range dto.Trees {
		if td.D != dto.D {
			return fmt.Errorf("ml: tree %d dimension %d != forest %d", i, td.D, dto.D)
		}
		t, err := td.restore()
		if err != nil {
			return fmt.Errorf("ml: tree %d: %w", i, err)
		}
		f.trees = append(f.trees, t)
	}
	f.fitted = true
	return nil
}

// Save writes the fitted forest to w.
func (f *RandomForestRegressor) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(f)
}

// LoadForest reads a forest previously written by Save.
func LoadForest(r io.Reader) (*RandomForestRegressor, error) {
	f := &RandomForestRegressor{}
	if err := gob.NewDecoder(r).Decode(f); err != nil {
		return nil, fmt.Errorf("ml: decode forest: %w", err)
	}
	return f, nil
}
