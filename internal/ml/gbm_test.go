package ml

import (
	"bytes"
	"testing"
)

func TestGBMFitsNonlinearData(t *testing.T) {
	X, y := synthDataset(1500, 31)
	Xtest, ytest := synthDataset(400, 32)
	gbm := &GradientBoostingRegressor{Rounds: 150, Seed: 1}
	if err := gbm.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(ytest, PredictAll(gbm, Xtest)); r2 < 0.95 {
		t.Fatalf("GBM test R2 = %v", r2)
	}
}

func TestGBMBeatsSingleShallowTree(t *testing.T) {
	X, y := synthDataset(1200, 33)
	Xtest, ytest := synthDataset(300, 34)
	stump := &DecisionTreeRegressor{MaxDepth: 3}
	if err := stump.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	gbm := &GradientBoostingRegressor{Rounds: 100, MaxDepth: 3, Seed: 2}
	if err := gbm.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	r2Stump := R2(ytest, PredictAll(stump, Xtest))
	r2GBM := R2(ytest, PredictAll(gbm, Xtest))
	if r2GBM <= r2Stump {
		t.Fatalf("boosting (%v) should beat its base learner (%v)", r2GBM, r2Stump)
	}
}

func TestGBMMoreRoundsFitTighter(t *testing.T) {
	X, y := synthDataset(800, 35)
	short := &GradientBoostingRegressor{Rounds: 5, Seed: 3}
	long := &GradientBoostingRegressor{Rounds: 150, Seed: 3}
	if err := short.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := long.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	r2Short := R2(y, PredictAll(short, X))
	r2Long := R2(y, PredictAll(long, X))
	if r2Long <= r2Short {
		t.Fatalf("150 rounds (%v) should fit training data tighter than 5 (%v)", r2Long, r2Short)
	}
}

func TestGBMErrorsAndPanics(t *testing.T) {
	gbm := &GradientBoostingRegressor{}
	if err := gbm.Fit(nil, nil); err == nil {
		t.Fatal("empty fit should error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Predict before Fit should panic")
		}
	}()
	gbm.Predict([]float64{1})
}

func TestGBMConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{7, 7, 7, 7}
	gbm := &GradientBoostingRegressor{Rounds: 10}
	if err := gbm.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if p := gbm.Predict([]float64{2.5}); p != 7 {
		t.Fatalf("constant predict %v", p)
	}
}

func TestForestSaveLoadRoundTrip(t *testing.T) {
	X, y := synthDataset(800, 41)
	rf := &RandomForestRegressor{Trees: 25, Seed: 9}
	if err := rf.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rf.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if got, want := back.Predict(X[i]), rf.Predict(X[i]); got != want {
			t.Fatalf("prediction %d changed after round trip: %v vs %v", i, got, want)
		}
	}
	// Breiman importances must survive serialization bit-exactly: the
	// TPM artifact cache hands reloaded models to the importance report.
	imp, impBack := rf.FeatureImportances(), back.FeatureImportances()
	if len(impBack) != len(imp) {
		t.Fatalf("importance length changed: %d vs %d", len(impBack), len(imp))
	}
	var total float64
	for i := range imp {
		if imp[i] != impBack[i] {
			t.Fatalf("importance %d changed after round trip: %v vs %v", i, impBack[i], imp[i])
		}
		total += impBack[i]
	}
	if total == 0 {
		t.Fatal("round-tripped importances are all zero")
	}
}

func TestForestSaveBeforeFitErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (&RandomForestRegressor{}).Save(&buf); err == nil {
		t.Fatal("Save before Fit should error")
	}
	if _, err := LoadForest(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage load should error")
	}
}
