package ml

import (
	"fmt"
	"runtime"
	"sync"

	"srcsim/internal/sim"
)

// RandomForestRegressor is a bagged ensemble of CART trees with random
// feature subsampling at each split — the estimator the paper adopts for
// its throughput prediction model (Table I row "Random Forest
// Regression", accuracy 0.94). Trees are fitted concurrently.
type RandomForestRegressor struct {
	// Trees is the ensemble size (default 100).
	Trees int
	// MaxDepth, MinLeaf configure each tree (tree defaults apply).
	MaxDepth int
	MinLeaf  int
	// MaxFeatures examined per split; 0 examines all features (the
	// scikit-learn regression default — bootstrap resampling alone
	// provides the ensemble diversity). Set to d/3 for the classic
	// Breiman heuristic.
	MaxFeatures int
	// Seed makes the whole ensemble deterministic.
	Seed uint64

	trees  []*DecisionTreeRegressor
	d      int
	fitted bool
}

// Name implements Regressor.
func (f *RandomForestRegressor) Name() string { return "Random Forest Regression" }

// Fit implements Regressor. Each tree gets a bootstrap resample of the
// training set and its own RNG stream; fitting is parallelised across
// GOMAXPROCS workers while remaining deterministic for a fixed Seed.
func (f *RandomForestRegressor) Fit(X [][]float64, y []float64) error {
	n, d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	if f.Trees <= 0 {
		f.Trees = 100
	}
	f.d = d
	maxFeatures := f.MaxFeatures
	if maxFeatures <= 0 || maxFeatures > d {
		maxFeatures = d
	}

	f.trees = make([]*DecisionTreeRegressor, f.Trees)
	type job struct{ i int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error

	workers := runtime.GOMAXPROCS(0)
	if workers > f.Trees {
		workers = f.Trees
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				// Per-tree RNG derived only from (Seed, tree index):
				// parallel scheduling cannot perturb results.
				rng := sim.NewRNG(f.Seed + uint64(j.i)*0x9e3779b97f4a7c15 + 1)
				bx := make([][]float64, n)
				by := make([]float64, n)
				for k := 0; k < n; k++ {
					pick := rng.Intn(n)
					bx[k] = X[pick]
					by[k] = y[pick]
				}
				tree := &DecisionTreeRegressor{
					MaxDepth:    f.MaxDepth,
					MinLeaf:     f.MinLeaf,
					MaxFeatures: maxFeatures,
					Seed:        rng.Uint64(),
				}
				if err := tree.Fit(bx, by); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("ml: tree %d: %w", j.i, err)
					}
					mu.Unlock()
					continue
				}
				f.trees[j.i] = tree
			}
		}()
	}
	for i := 0; i < f.Trees; i++ {
		jobs <- job{i}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	f.fitted = true
	return nil
}

// Dim returns the fitted input dimension (0 before Fit) — callers
// loading persisted forests use it to reject dimension-mismatched
// models before Predict's panic path can trigger.
func (f *RandomForestRegressor) Dim() int { return f.d }

// Predict implements Regressor: the mean of all tree predictions.
func (f *RandomForestRegressor) Predict(x []float64) float64 {
	if !f.fitted {
		panic("ml: RandomForestRegressor.Predict before Fit")
	}
	if len(x) != f.d {
		panic(fmt.Sprintf("ml: predict with %d features, trained on %d", len(x), f.d))
	}
	var s float64
	for _, t := range f.trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.trees))
}

// FeatureImportances returns Breiman impurity importance averaged over
// the ensemble, normalized to sum to 1. The paper uses this to report
// that arrival flow speed carries weight 0.39.
func (f *RandomForestRegressor) FeatureImportances() []float64 {
	if !f.fitted {
		panic("ml: FeatureImportances before Fit")
	}
	out := make([]float64, f.d)
	for _, t := range f.trees {
		for i, v := range t.FeatureImportances() {
			out[i] += v
		}
	}
	var total float64
	for _, v := range out {
		total += v
	}
	if total == 0 {
		return out
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// TableIRegressors returns fresh instances of the paper's five Table I
// estimators, in the table's row order. seed makes stochastic estimators
// deterministic.
func TableIRegressors(seed uint64) []Regressor {
	return []Regressor{
		&LinearRegression{},
		&PolynomialRegression{},
		&KNNRegressor{K: 5},
		&DecisionTreeRegressor{Seed: seed},
		&RandomForestRegressor{Trees: 100, Seed: seed},
	}
}
