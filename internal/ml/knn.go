package ml

import (
	"container/heap"
	"fmt"
)

// KNNRegressor predicts the mean target of the K nearest training samples
// under Euclidean distance on standardized features. Table I row
// "K-Nearest Neighbor".
type KNNRegressor struct {
	// K is the neighbourhood size (default 5). If fewer training samples
	// exist, all are used.
	K int

	std    *Standardizer
	x      [][]float64
	y      []float64
	fitted bool
}

// Name implements Regressor.
func (k *KNNRegressor) Name() string { return "K-Nearest Neighbor" }

// Fit implements Regressor. KNN is a lazy learner: Fit standardizes and
// stores the training set.
func (k *KNNRegressor) Fit(X [][]float64, y []float64) error {
	if _, _, err := checkXY(X, y); err != nil {
		return err
	}
	if k.K <= 0 {
		k.K = 5
	}
	k.std = FitStandardizer(X)
	k.x = k.std.TransformAll(X)
	k.y = append([]float64(nil), y...)
	k.fitted = true
	return nil
}

// neighborHeap is a bounded max-heap on distance, keeping the K smallest.
type neighborHeap []neighbor

type neighbor struct {
	dist float64
	y    float64
}

func (h neighborHeap) Len() int           { return len(h) }
func (h neighborHeap) Less(i, j int) bool { return h[i].dist > h[j].dist } // max-heap
func (h neighborHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *neighborHeap) Push(x any)        { *h = append(*h, x.(neighbor)) }
func (h *neighborHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// Predict implements Regressor.
func (k *KNNRegressor) Predict(x []float64) float64 {
	if !k.fitted {
		panic("ml: KNNRegressor.Predict before Fit")
	}
	if len(x) != len(k.std.Mean) {
		panic(fmt.Sprintf("ml: predict with %d features, trained on %d", len(x), len(k.std.Mean)))
	}
	q := k.std.Transform(x)
	kk := k.K
	if kk > len(k.x) {
		kk = len(k.x)
	}
	h := make(neighborHeap, 0, kk+1)
	for i, row := range k.x {
		var d2 float64
		for j, v := range row {
			dv := v - q[j]
			d2 += dv * dv
			// Early exit once we already exceed the current worst
			// neighbour; saves most of the inner loop at scale.
			if len(h) == kk && d2 > h[0].dist {
				break
			}
		}
		if len(h) < kk {
			heap.Push(&h, neighbor{dist: d2, y: k.y[i]})
		} else if d2 < h[0].dist {
			h[0] = neighbor{dist: d2, y: k.y[i]}
			heap.Fix(&h, 0)
		}
	}
	var s float64
	for _, nb := range h {
		s += nb.y
	}
	return s / float64(len(h))
}
