package faults

import (
	"fmt"

	"srcsim/internal/netsim"
	"srcsim/internal/obs"
	"srcsim/internal/sim"
	"srcsim/internal/ssd"
)

// Binding hands Install the handles a schedule's selectors resolve
// against. The cluster package fills this in; tests may bind a bare
// network.
type Binding struct {
	Eng *sim.Engine
	Net *netsim.Network
	// Initiators and Targets are the host nodes, in cluster index order
	// ("initiator:N" / "target:N" select into these).
	Initiators []*netsim.Node
	Targets    []*netsim.Node
	// TargetDevices lists each target's flash-array devices (for
	// ssd-slow and target-stall). May be nil when no device-level events
	// are scheduled.
	TargetDevices [][]*ssd.Device
	// StallTelemetry, if set, cuts (true) or restores (false) the SRC
	// monitor feed of target i. Required for telemetry-stall events.
	StallTelemetry func(target int, stalled bool)
	// Ctrl is the in-band control plane, when one is enabled. Required
	// for ctrl-drop/ctrl-delay/ctrl-partition/controller-crash events.
	Ctrl CtrlPlane
	// Metrics and Scope instrument injections; either may be nil.
	Metrics *obs.Registry
	Scope   *obs.Scope
}

// Injector is an installed schedule. All events are pre-resolved and
// pre-scheduled; the injector only accumulates counters as they fire.
type Injector struct {
	// Injected counts primitive fault actions actually fired (a
	// link-flap of Count 3 fires 3, each drop window fires 1).
	Injected uint64

	sc       *obs.Scope
	injected *obs.Counter
}

// lossState tracks the combined drop/corrupt probability per port so
// overlapping drop and corrupt windows compose instead of clobbering
// each other.
type lossState struct{ drop, corrupt float64 }

// Install validates the schedule against the bound cluster, seeds the
// chaos RNG, and schedules every event on the engine. A nil or empty
// schedule installs an inert injector. Errors are configuration
// mistakes (bad selector index, missing binding for a kind).
func Install(s *Schedule, b Binding) (*Injector, error) {
	inj := &Injector{sc: b.Scope}
	if b.Metrics != nil {
		inj.injected = b.Metrics.Counter("faults", "injected")
	}
	if s == nil {
		return inj, nil
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Seed != 0 && b.Net != nil {
		b.Net.SeedChaos(s.Seed)
	}
	loss := make(map[*netsim.Port]*lossState)
	for i, ev := range s.Events {
		if err := inj.install(ev, b, loss); err != nil {
			return nil, fmt.Errorf("faults: event %d: %w", i, err)
		}
	}
	return inj, nil
}

// node resolves an event's Where selector to its host node.
func (b Binding) node(where string) (*netsim.Node, hostRole, int, error) {
	role, idx, err := parseWhere(where)
	if err != nil {
		return nil, 0, 0, err
	}
	hosts := b.Initiators
	if role == roleTarget {
		hosts = b.Targets
	}
	if idx >= len(hosts) {
		return nil, 0, 0, fmt.Errorf("%q: index %d out of range (have %d)", where, idx, len(hosts))
	}
	return hosts[idx], role, idx, nil
}

// uplink returns the host's single fabric port.
func uplink(node *netsim.Node) (*netsim.Port, error) {
	ports := node.Ports()
	if len(ports) == 0 {
		return nil, fmt.Errorf("node %s has no ports", node.Name)
	}
	return ports[0], nil
}

// fired accounts one primitive injection.
func (inj *Injector) fired(at sim.Time, ev Event, detail string) {
	inj.Injected++
	inj.injected.Inc()
	if inj.sc.Enabled() {
		inj.sc.Instant(at, "faults", string(ev.Kind)+" "+ev.Where+" "+detail)
	}
}

func (inj *Injector) install(ev Event, b Binding, loss map[*netsim.Port]*lossState) error {
	// Control-plane kinds act on the plane, not a fabric node; route them
	// before host resolution ("controller:0" names no host).
	if ctrlKind(ev.Kind) {
		return inj.installCtrl(ev, b)
	}
	node, _, idx, err := b.node(ev.Where)
	if err != nil {
		return err
	}
	if b.Eng == nil {
		return fmt.Errorf("binding has no engine")
	}
	switch ev.Kind {
	case LinkDown, LinkUp, LinkFlap:
		port, err := uplink(node)
		if err != nil {
			return err
		}
		down := func(at sim.Time, dur sim.Time) {
			b.Eng.Schedule(at, func() {
				b.Net.SetLinkState(port, false)
				inj.fired(at, ev, "down")
			})
			if dur > 0 {
				b.Eng.Schedule(at+dur, func() {
					b.Net.SetLinkState(port, true)
					inj.fired(at+dur, ev, "up")
				})
			}
		}
		switch ev.Kind {
		case LinkUp:
			b.Eng.Schedule(ev.At, func() {
				b.Net.SetLinkState(port, true)
				inj.fired(ev.At, ev, "up")
			})
		case LinkDown:
			down(ev.At, ev.Duration)
		default: // LinkFlap
			for i := 0; i < ev.Count; i++ {
				down(ev.At+sim.Time(i)*ev.Period, ev.Duration)
			}
		}

	case Drop, Corrupt:
		port, err := uplink(node)
		if err != nil {
			return err
		}
		// Both directions of the link lose packets.
		ports := []*netsim.Port{port, port.Peer()}
		apply := func(at sim.Time, p float64, detail string) {
			b.Eng.Schedule(at, func() {
				for _, pt := range ports {
					st := loss[pt]
					if st == nil {
						st = &lossState{}
						loss[pt] = st
					}
					if ev.Kind == Drop {
						st.drop = p
					} else {
						st.corrupt = p
					}
					pt.SetLoss(st.drop, st.corrupt)
				}
				inj.fired(at, ev, detail)
			})
		}
		apply(ev.At, ev.Probability, fmt.Sprintf("p=%g", ev.Probability))
		if ev.Duration > 0 {
			apply(ev.At+ev.Duration, 0, "clear")
		}

	case SSDSlow, TargetStall:
		if idx >= len(b.TargetDevices) || len(b.TargetDevices[idx]) == 0 {
			return fmt.Errorf("%q: no devices bound", ev.Where)
		}
		devs := b.TargetDevices[idx]
		apply := func(at sim.Time, active bool, detail string) {
			b.Eng.Schedule(at, func() {
				for _, d := range devs {
					if ev.Kind == SSDSlow {
						if active {
							d.SetSlowFactor(ev.Factor)
						} else {
							d.SetSlowFactor(1)
						}
					} else {
						d.SetHalted(active)
					}
				}
				inj.fired(at, ev, detail)
			})
		}
		apply(ev.At, true, "start")
		if ev.Duration > 0 {
			apply(ev.At+ev.Duration, false, "end")
		}

	case TelemetryStall:
		if b.StallTelemetry == nil {
			return fmt.Errorf("%q: no telemetry binding", ev.Where)
		}
		b.Eng.Schedule(ev.At, func() {
			b.StallTelemetry(idx, true)
			inj.fired(ev.At, ev, "start")
		})
		b.Eng.Schedule(ev.At+ev.Duration, func() {
			b.StallTelemetry(idx, false)
			inj.fired(ev.At+ev.Duration, ev, "end")
		})

	case PFCStorm:
		port, err := uplink(node)
		if err != nil {
			return err
		}
		count := ev.Count
		if count < 1 {
			count = 1
		}
		for i := 0; i < count; i++ {
			at := ev.At + sim.Time(i)*ev.Period
			b.Eng.Schedule(at, func() {
				b.Net.ForcePause(port, ev.Duration)
				inj.fired(at, ev, "pause")
			})
		}

	default:
		return fmt.Errorf("unknown kind %q", ev.Kind)
	}
	return nil
}

// CollectMetrics folds the injector's counters into a registry (the
// live counter already accumulates; this covers registries attached
// only for end-of-run collection). Nil-safe.
func (inj *Injector) CollectMetrics(reg *obs.Registry, labels ...obs.Label) {
	if inj == nil || reg == nil || inj.injected != nil {
		return
	}
	reg.Counter("faults", "injected", labels...).Add(float64(inj.Injected))
}
