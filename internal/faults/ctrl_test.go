package faults

import (
	"strings"
	"testing"

	"srcsim/internal/sim"
)

// TestValidateCtrlKinds: parameter/selector rules for the
// control-plane fault kinds — the ctrl-* kinds stay in the target
// namespace, controller-crash owns the controller namespace.
func TestValidateCtrlKinds(t *testing.T) {
	bad := []struct {
		name string
		ev   Event
	}{
		{"ctrl-drop probability zero", Event{Kind: CtrlDrop, Where: "target:0"}},
		{"ctrl-drop probability > 1", Event{Kind: CtrlDrop, Where: "target:0", Probability: 1.5}},
		{"ctrl-drop on initiator", Event{Kind: CtrlDrop, Where: "initiator:0", Probability: 0.5}},
		{"ctrl-drop on controller", Event{Kind: CtrlDrop, Where: "controller:0", Probability: 0.5}},
		{"ctrl-delay factor < 1", Event{Kind: CtrlDelay, Where: "target:0", Factor: 0.5}},
		{"ctrl-delay on initiator", Event{Kind: CtrlDelay, Where: "initiator:0", Factor: 2}},
		{"ctrl-partition no duration", Event{Kind: CtrlPartition, Where: "target:0"}},
		{"ctrl-partition on controller", Event{Kind: CtrlPartition, Where: "controller:0", Duration: 1}},
		{"crash on target", Event{Kind: ControllerCrash, Where: "target:0"}},
		{"crash on controller:1", Event{Kind: ControllerCrash, Where: "controller:1"}},
		{"non-crash kind on controller", Event{Kind: LinkDown, Where: "controller:0"}},
	}
	for _, c := range bad {
		s := &Schedule{Events: []Event{c.ev}}
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}

	good := &Schedule{Events: []Event{
		{At: 10, Kind: CtrlDrop, Where: "target:0", Duration: 50, Probability: 0.5},
		{At: 10, Kind: CtrlDelay, Where: "target:1", Duration: 50, Factor: 8},
		{At: 70, Kind: CtrlPartition, Where: "target:0", Duration: 20},
		{At: 10, Kind: ControllerCrash, Where: "controller:0", Duration: 40},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good ctrl schedule rejected: %v", err)
	}

	// The new kinds are windowed: overlapping windows on one selector
	// must be rejected like any other contradictory pair.
	overlap := &Schedule{Events: []Event{
		{At: 10, Kind: CtrlDrop, Where: "target:0", Duration: 50, Probability: 0.5},
		{At: 30, Kind: CtrlDrop, Where: "target:0", Duration: 50, Probability: 0.9},
	}}
	err := overlap.Validate()
	if err == nil {
		t.Fatal("overlapping ctrl-drop windows validated")
	}
	if !strings.Contains(err.Error(), "overlaps") {
		t.Fatalf("overlap error unhelpful: %v", err)
	}
}

// fakePlane records the fault hooks Install's scheduled events invoke.
type fakePlane struct {
	targets   int
	loss      map[int]float64
	delay     map[int]float64
	partition map[int]bool
	crashes   int
	restarts  int
}

func newFakePlane(targets int) *fakePlane {
	return &fakePlane{
		targets: targets,
		loss:    map[int]float64{}, delay: map[int]float64{}, partition: map[int]bool{},
	}
}

func (f *fakePlane) Targets() int                    { return f.targets }
func (f *fakePlane) SetLoss(t int, p float64)        { f.loss[t] = p }
func (f *fakePlane) SetDelayFactor(t int, x float64) { f.delay[t] = x }
func (f *fakePlane) SetPartition(t int, on bool)     { f.partition[t] = on }
func (f *fakePlane) Crash()                          { f.crashes++ }
func (f *fakePlane) Restart()                        { f.restarts++ }

// TestInstallCtrlKinds: the four control-plane kinds resolve against
// the bound plane (never the host lists), fire with windowed
// apply/clear semantics, and fail installation when no plane is bound
// or the target index exceeds the plane.
func TestInstallCtrlKinds(t *testing.T) {
	sched := &Schedule{Events: []Event{
		{At: 10, Kind: CtrlDrop, Where: "target:0", Duration: 50, Probability: 0.5},
		{At: 10, Kind: CtrlDelay, Where: "target:1", Duration: 50, Factor: 8},
		{At: 70, Kind: CtrlPartition, Where: "target:0", Duration: 20},
		{At: 100, Kind: ControllerCrash, Where: "controller:0", Duration: 40},
	}}

	// No plane bound: installation must fail, not panic mid-run. Note
	// the binding has no host lists at all — ctrl kinds never resolve
	// against them.
	eng := sim.NewEngine()
	if _, err := Install(sched, Binding{Eng: eng}); err == nil {
		t.Fatal("installed ctrl faults with no plane bound")
	}

	fp := newFakePlane(2)
	inj, err := Install(sched, Binding{Eng: eng, Ctrl: fp})
	if err != nil {
		t.Fatal(err)
	}

	eng.Run(30)
	if fp.loss[0] != 0.5 || fp.delay[1] != 8 {
		t.Fatalf("mid-window: loss=%v delay=%v", fp.loss, fp.delay)
	}
	eng.Run(65)
	if fp.loss[0] != 0 || fp.delay[1] != 1 {
		t.Fatalf("after windows: loss=%v delay=%v", fp.loss, fp.delay)
	}
	eng.Run(80)
	if !fp.partition[0] {
		t.Fatal("partition not applied")
	}
	eng.Run(95)
	if fp.partition[0] {
		t.Fatal("partition not healed")
	}
	eng.Run(120)
	if fp.crashes != 1 || fp.restarts != 0 {
		t.Fatalf("mid-crash: crashes=%d restarts=%d", fp.crashes, fp.restarts)
	}
	eng.RunUntilIdle()
	if fp.restarts != 1 {
		t.Fatalf("restarts=%d, want 1", fp.restarts)
	}
	// 4 applies + 4 clears (drop, delay, partition heal, restart).
	if inj.Injected != 8 {
		t.Fatalf("Injected = %d, want 8", inj.Injected)
	}

	// Index beyond the plane's agent count.
	oob := &Schedule{Events: []Event{
		{At: 10, Kind: CtrlDrop, Where: "target:7", Probability: 0.5},
	}}
	if _, err := Install(oob, Binding{Eng: sim.NewEngine(), Ctrl: newFakePlane(2)}); err == nil {
		t.Fatal("out-of-range ctrl target installed")
	}
}
