package faults

import (
	"strings"
	"testing"

	"srcsim/internal/netsim"
	"srcsim/internal/sim"
)

func TestLoadJSONHappyPath(t *testing.T) {
	const js = `{
		"seed": 7,
		"recovery": {
			"pfc_watchdog_ns": 1000000,
			"timeout_ns": 50000000,
			"max_retries": 4,
			"backoff_base_ns": 2000000,
			"backoff_cap_ns": 8000000,
			"stale_after_ns": 1000000,
			"fallback_weight": 8
		},
		"events": [
			{"at_ns": 2000000, "kind": "drop", "where": "target:0",
			 "duration_ns": 20000000, "probability": 0.01},
			{"at_ns": 4000000, "kind": "link-flap", "where": "target:1",
			 "duration_ns": 400000, "period_ns": 3000000, "count": 3},
			{"at_ns": 6000000, "kind": "pfc-storm", "where": "target:0",
			 "duration_ns": 2000000}
		]
	}`
	s, err := LoadJSON(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 {
		t.Errorf("Seed = %d, want 7", s.Seed)
	}
	if s.Recovery == nil || s.Recovery.Timeout != 50*sim.Millisecond || s.Recovery.FallbackWeight != 8 {
		t.Errorf("Recovery = %+v", s.Recovery)
	}
	if len(s.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(s.Events))
	}
	if s.Events[0].Kind != Drop || s.Events[0].Probability != 0.01 {
		t.Errorf("event 0 = %+v", s.Events[0])
	}
	if s.Events[1].Kind != LinkFlap || s.Events[1].Count != 3 {
		t.Errorf("event 1 = %+v", s.Events[1])
	}
}

func TestLoadJSONRejectsUnknownField(t *testing.T) {
	_, err := LoadJSON(strings.NewReader(`{"events": [], "sede": 7}`))
	if err == nil {
		t.Fatal("typo'd field accepted silently")
	}
}

func TestLoadJSONEmptyObject(t *testing.T) {
	s, err := LoadJSON(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 0 || s.Recovery != nil || len(s.Events) != 0 {
		t.Fatalf("empty object is not the zero schedule: %+v", s)
	}
}

func TestParseWhere(t *testing.T) {
	cases := []struct {
		in   string
		role hostRole
		idx  int
		ok   bool
	}{
		{"initiator:0", roleInitiator, 0, true},
		{"target:12", roleTarget, 12, true},
		{"target", 0, 0, false},
		{"switch:0", 0, 0, false},
		{"target:-1", 0, 0, false},
		{"target:x", 0, 0, false},
	}
	for _, c := range cases {
		role, idx, err := parseWhere(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseWhere(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && (role != c.role || idx != c.idx) {
			t.Errorf("parseWhere(%q) = (%v, %d)", c.in, role, idx)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
	}{
		{"negative at", Event{At: -1, Kind: LinkDown, Where: "target:0"}},
		{"negative duration", Event{Kind: LinkDown, Where: "target:0", Duration: -1}},
		{"bad where", Event{Kind: LinkDown, Where: "nowhere"}},
		{"flap zero count", Event{Kind: LinkFlap, Where: "target:0", Duration: 1}},
		{"flap no duration", Event{Kind: LinkFlap, Where: "target:0", Count: 1}},
		{"flap period <= duration", Event{Kind: LinkFlap, Where: "target:0", Count: 2, Duration: 5, Period: 5}},
		{"drop probability zero", Event{Kind: Drop, Where: "target:0"}},
		{"drop probability > 1", Event{Kind: Drop, Where: "target:0", Probability: 1.5}},
		{"slow factor < 1", Event{Kind: SSDSlow, Where: "target:0", Factor: 0.5}},
		{"slow on initiator", Event{Kind: SSDSlow, Where: "initiator:0", Factor: 2}},
		{"stall no duration", Event{Kind: TargetStall, Where: "target:0"}},
		{"telemetry on initiator", Event{Kind: TelemetryStall, Where: "initiator:0", Duration: 1}},
		{"storm no duration", Event{Kind: PFCStorm, Where: "target:0"}},
		{"storm repeat no period", Event{Kind: PFCStorm, Where: "target:0", Duration: 1, Count: 2}},
		{"unknown kind", Event{Kind: "meteor", Where: "target:0"}},
	}
	for _, c := range cases {
		s := &Schedule{Events: []Event{c.ev}}
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
	var nilSched *Schedule
	if err := nilSched.Validate(); err != nil {
		t.Errorf("nil schedule: %v", err)
	}
}

// TestValidateOverlaps: two active windows of one windowed kind on one
// selector must be rejected with both event indexes named; the same
// windows on different selectors, different kinds, or back-to-back
// (non-overlapping) are fine.
func TestValidateOverlaps(t *testing.T) {
	slow := func(at, dur sim.Time, where string) Event {
		return Event{At: at, Kind: SSDSlow, Where: where, Duration: dur, Factor: 2}
	}
	bad := []struct {
		name   string
		events []Event
	}{
		{"plain overlap", []Event{slow(100, 50, "target:0"), slow(120, 50, "target:0")}},
		{"contained", []Event{slow(100, 100, "target:0"), slow(120, 10, "target:0")}},
		{"same instant", []Event{slow(100, 50, "target:0"), slow(100, 50, "target:0")}},
		{"persistent then later", []Event{slow(100, 0, "target:0"), slow(500, 10, "target:0")}},
		{"out of order in the list", []Event{slow(120, 50, "target:0"), slow(100, 50, "target:0")}},
		{"drop overlap", []Event{
			{At: 0, Kind: Drop, Where: "target:1", Duration: 100, Probability: 0.1},
			{At: 50, Kind: Drop, Where: "target:1", Duration: 100, Probability: 0.2},
		}},
		{"telemetry overlap", []Event{
			{At: 0, Kind: TelemetryStall, Where: "target:0", Duration: 100},
			{At: 99, Kind: TelemetryStall, Where: "target:0", Duration: 100},
		}},
	}
	for _, c := range bad {
		s := &Schedule{Events: c.events}
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: validated", c.name)
			continue
		}
		if !strings.Contains(err.Error(), "event ") || !strings.Contains(err.Error(), "overlaps") {
			t.Errorf("%s: error does not name the offending events: %v", c.name, err)
		}
	}
	good := []struct {
		name   string
		events []Event
	}{
		{"back to back", []Event{slow(100, 50, "target:0"), slow(150, 50, "target:0")}},
		{"different targets", []Event{slow(100, 50, "target:0"), slow(100, 50, "target:1")}},
		{"different kinds", []Event{
			slow(100, 50, "target:0"),
			{At: 100, Kind: TargetStall, Where: "target:0", Duration: 50},
		}},
		{"flap is not windowed", []Event{
			{At: 0, Kind: LinkFlap, Where: "target:0", Count: 3, Duration: 5, Period: 10},
			{At: 2, Kind: LinkFlap, Where: "target:0", Count: 3, Duration: 5, Period: 10},
		}},
	}
	for _, c := range good {
		s := &Schedule{Events: c.events}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

// TestRepeat: the aging-staircase helper spaces copies period apart
// with a geometric factor ramp, and its output passes Validate when the
// period clears the duration.
func TestRepeat(t *testing.T) {
	base := Event{At: 1000, Kind: SSDSlow, Where: "target:0", Duration: 400, Factor: 2}
	evs := Repeat(base, 3, 500, 1.5)
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	wantAt := []sim.Time{1000, 1500, 2000}
	wantF := []float64{2, 3, 4.5}
	for i, ev := range evs {
		if ev.At != wantAt[i] || ev.Factor != wantF[i] {
			t.Errorf("step %d: at %d factor %g, want %d %g", i, ev.At, ev.Factor, wantAt[i], wantF[i])
		}
		if ev.Kind != SSDSlow || ev.Where != "target:0" || ev.Duration != 400 {
			t.Errorf("step %d lost base fields: %+v", i, ev)
		}
	}
	if err := (&Schedule{Events: evs}).Validate(); err != nil {
		t.Fatalf("repeat schedule should validate: %v", err)
	}
	// Too-tight period: the expansion itself must be caught by Validate.
	if err := (&Schedule{Events: Repeat(base, 2, 300, 1)}).Validate(); err == nil {
		t.Fatal("overlapping repeat validated")
	}
	if got := Repeat(base, 0, 500, 1); len(got) != 1 {
		t.Fatalf("count<1 should clamp to one event, got %d", len(got))
	}
}

// TestInstallRangeChecks: selector indexes beyond the bound cluster and
// kinds missing their binding must fail installation, not fire and
// panic mid-run.
func TestInstallRangeChecks(t *testing.T) {
	eng := sim.NewEngine()
	net, err := netsim.NewNetwork(eng, netsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	hosts := netsim.BuildRack(net, 2, 40e9, sim.Microsecond)
	b := Binding{Eng: eng, Net: net, Initiators: hosts[:1], Targets: hosts[1:]}

	cases := []Event{
		{Kind: LinkDown, Where: "target:5"},
		{Kind: LinkDown, Where: "initiator:1"},
		{Kind: SSDSlow, Where: "target:0", Factor: 2},                   // no devices bound
		{Kind: TelemetryStall, Where: "target:0", Duration: sim.Second}, // no telemetry binding
	}
	for _, ev := range cases {
		if _, err := Install(&Schedule{Events: []Event{ev}}, b); err == nil {
			t.Errorf("%s %s: installed", ev.Kind, ev.Where)
		}
	}

	// A valid schedule against the same binding installs cleanly.
	ok := &Schedule{Events: []Event{
		{At: sim.Millisecond, Kind: LinkDown, Where: "target:0", Duration: sim.Millisecond},
	}}
	inj, err := Install(ok, b)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntilIdle()
	if inj.Injected != 2 { // down + scheduled up
		t.Fatalf("Injected = %d, want 2", inj.Injected)
	}
	if net.LinkDowns != 1 || net.LinkUps != 1 {
		t.Fatalf("LinkDowns=%d LinkUps=%d, want 1/1", net.LinkDowns, net.LinkUps)
	}
}

// TestInstallNilSchedule: a nil schedule yields an inert injector.
func TestInstallNilSchedule(t *testing.T) {
	inj, err := Install(nil, Binding{})
	if err != nil {
		t.Fatal(err)
	}
	if inj == nil || inj.Injected != 0 {
		t.Fatal("nil schedule did not install inert injector")
	}
}
