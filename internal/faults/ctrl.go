package faults

import (
	"fmt"
)

// CtrlPlane is the handle the ctrl-* and controller-crash kinds act on.
// internal/ctrlplane implements it; the indirection keeps this package
// free of a dependency on the plane's internals.
type CtrlPlane interface {
	// Targets returns the number of agent slots ("target:N" range).
	Targets() int
	// SetLoss adds (or, at 0, clears) an extra message-drop probability
	// on target t's control channel.
	SetLoss(t int, prob float64)
	// SetDelayFactor scales target t's control-channel base delay.
	SetDelayFactor(t int, f float64)
	// SetPartition cuts or restores target t's control channel.
	SetPartition(t int, on bool)
	// Crash kills the primary controller; Restart revives it (fenced if
	// a standby took over meanwhile).
	Crash()
	Restart()
}

// ctrlKinds are the fault kinds installCtrl handles.
func ctrlKind(k Kind) bool {
	switch k {
	case CtrlDrop, CtrlDelay, CtrlPartition, ControllerCrash:
		return true
	}
	return false
}

// installCtrl pre-schedules one control-plane fault. The schedule has
// already passed Validate, so selectors parse and parameters are in
// range; what remains is binding resolution (a plane must be attached,
// and target indexes must exist on it).
func (inj *Injector) installCtrl(ev Event, b Binding) error {
	if b.Ctrl == nil {
		return fmt.Errorf("%q: no control plane bound (enable Spec.Ctrl for ctrl-* faults)", ev.Where)
	}
	if b.Eng == nil {
		return fmt.Errorf("binding has no engine")
	}
	role, idx, err := parseWhere(ev.Where)
	if err != nil {
		return err
	}
	if role == roleTarget && idx >= b.Ctrl.Targets() {
		return fmt.Errorf("%q: index %d out of range (have %d)", ev.Where, idx, b.Ctrl.Targets())
	}
	switch ev.Kind {
	case CtrlDrop:
		b.Eng.Schedule(ev.At, func() {
			b.Ctrl.SetLoss(idx, ev.Probability)
			inj.fired(ev.At, ev, fmt.Sprintf("p=%g", ev.Probability))
		})
		if ev.Duration > 0 {
			at := ev.At + ev.Duration
			b.Eng.Schedule(at, func() {
				b.Ctrl.SetLoss(idx, 0)
				inj.fired(at, ev, "clear")
			})
		}

	case CtrlDelay:
		b.Eng.Schedule(ev.At, func() {
			b.Ctrl.SetDelayFactor(idx, ev.Factor)
			inj.fired(ev.At, ev, fmt.Sprintf("x%g", ev.Factor))
		})
		if ev.Duration > 0 {
			at := ev.At + ev.Duration
			b.Eng.Schedule(at, func() {
				b.Ctrl.SetDelayFactor(idx, 1)
				inj.fired(at, ev, "clear")
			})
		}

	case CtrlPartition:
		b.Eng.Schedule(ev.At, func() {
			b.Ctrl.SetPartition(idx, true)
			inj.fired(ev.At, ev, "start")
		})
		at := ev.At + ev.Duration
		b.Eng.Schedule(at, func() {
			b.Ctrl.SetPartition(idx, false)
			inj.fired(at, ev, "heal")
		})

	case ControllerCrash:
		b.Eng.Schedule(ev.At, func() {
			b.Ctrl.Crash()
			inj.fired(ev.At, ev, "crash")
		})
		if ev.Duration > 0 {
			at := ev.At + ev.Duration
			b.Eng.Schedule(at, func() {
				b.Ctrl.Restart()
				inj.fired(at, ev, "restart")
			})
		}

	default:
		return fmt.Errorf("unknown control-plane kind %q", ev.Kind)
	}
	return nil
}
