// Package faults is the deterministic fault-injection subsystem: a
// seeded, sim-time-stamped Schedule of fabric and device failures that
// an Injector replays into a running cluster, plus the Recovery knobs
// that arm the corresponding recovery machinery (NVMe-oF timeouts and
// retries, the PFC storm watchdog, SRC's stale-telemetry fallback).
//
// Schedules compose in code or load from JSON (the srcsim -faults
// flag). Everything is driven off the simulation clock and the
// network's seeded chaos RNG, so a given (schedule, seed, workload)
// triple reproduces bit-for-bit — chaos runs are debuggable, not merely
// repeatable in distribution.
package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"srcsim/internal/sim"
)

// Kind names one fault type. String values (not iota) so schedules are
// readable as JSON.
type Kind string

// Fault kinds.
const (
	// LinkDown fails the host link of Where at At; with Duration set it
	// comes back automatically, otherwise it stays down (use LinkUp).
	LinkDown Kind = "link-down"
	// LinkUp restores a previously failed link.
	LinkUp Kind = "link-up"
	// LinkFlap expands to Count down/up pairs: down at At + i*Period,
	// each staying down for Duration.
	LinkFlap Kind = "link-flap"
	// Drop sets a per-packet drop probability on both directions of the
	// host link (breaking losslessness); Duration bounds it.
	Drop Kind = "drop"
	// Corrupt sets a per-packet corruption probability on both
	// directions of the host link; corrupted frames are discarded at the
	// next hop's FCS check. Duration bounds it.
	Corrupt Kind = "corrupt"
	// SSDSlow multiplies die-operation latencies of the target's devices
	// by Factor (a slow-die / thermal-throttle spike); Duration bounds it.
	SSDSlow Kind = "ssd-slow"
	// TargetStall freezes command fetching on the target's devices for
	// Duration (firmware hiccup); in-flight operations drain normally.
	TargetStall Kind = "target-stall"
	// TelemetryStall cuts the SRC monitor's command feed at the target
	// for Duration, exercising the controller's stale-telemetry
	// fallback. I/O itself keeps flowing.
	TelemetryStall Kind = "telemetry-stall"
	// PFCStorm force-pauses the host's egress port for Duration,
	// repeating Count times every Period when Count > 1 — the pause
	// storm the PFC watchdog exists to break.
	PFCStorm Kind = "pfc-storm"
	// CtrlDrop adds a per-message drop probability on the target's
	// in-band control channel (telemetry, directives, acks, and
	// heartbeats alike); Duration bounds it. Requires the control plane.
	CtrlDrop Kind = "ctrl-drop"
	// CtrlDelay multiplies the control channel's base delay for the
	// target by Factor; Duration bounds it.
	CtrlDelay Kind = "ctrl-delay"
	// CtrlPartition cuts the target's control channel in both
	// directions for Duration (messages already in flight still land).
	CtrlPartition Kind = "ctrl-partition"
	// ControllerCrash kills the SRC controller process (Where is
	// "controller:0" — one controller domain per cluster). With
	// Duration set the primary restarts; if a standby took over
	// meanwhile, the restarted primary comes back fenced.
	ControllerCrash Kind = "controller-crash"
)

// Event is one scheduled fault. Times and durations are nanoseconds of
// simulated time, matching sim.Time.
type Event struct {
	At   sim.Time `json:"at_ns"`
	Kind Kind     `json:"kind"`
	// Where selects the victim: "initiator:N" or "target:N" (index into
	// the cluster's host lists). Device- and telemetry-level kinds
	// require a target.
	Where string `json:"where"`
	// Duration bounds the fault; zero means it persists (where the kind
	// allows that).
	Duration sim.Time `json:"duration_ns,omitempty"`
	// Period spaces the repetitions of link-flap and pfc-storm.
	Period sim.Time `json:"period_ns,omitempty"`
	// Count is the repetition count of link-flap and pfc-storm
	// (default 1).
	Count int `json:"count,omitempty"`
	// Probability is the per-packet loss probability of drop/corrupt.
	Probability float64 `json:"probability,omitempty"`
	// Factor is the latency multiplier of ssd-slow.
	Factor float64 `json:"factor,omitempty"`
}

// Recovery bundles the recovery knobs a schedule wants armed. Cluster
// construction copies set fields into the corresponding Spec settings
// unless the Spec already configures them explicitly.
type Recovery struct {
	// PFCWatchdog bounds how long a port may stay PFC-paused
	// (netsim.Config.PFCWatchdog).
	PFCWatchdog sim.Time `json:"pfc_watchdog_ns,omitempty"`
	// Timeout/MaxRetries/BackoffBase/BackoffCap form the initiators'
	// nvmeof.RetryPolicy; Timeout also arms the targets' TXQ
	// credit-leak timer.
	Timeout     sim.Time `json:"timeout_ns,omitempty"`
	MaxRetries  int      `json:"max_retries,omitempty"`
	BackoffBase sim.Time `json:"backoff_base_ns,omitempty"`
	BackoffCap  sim.Time `json:"backoff_cap_ns,omitempty"`
	// StaleAfter/FallbackWeight arm SRC's stale-telemetry fallback
	// (core.ControllerConfig).
	StaleAfter     sim.Time `json:"stale_after_ns,omitempty"`
	FallbackWeight int      `json:"fallback_weight,omitempty"`
}

// Schedule is a full fault plan: the chaos seed, the recovery knobs,
// and the event list. The zero value (and an empty JSON object) is a
// valid empty schedule that injects nothing and changes nothing.
type Schedule struct {
	// Seed reseeds the network's chaos RNG (drop/corrupt draws);
	// zero keeps the network's own seed.
	Seed     uint64    `json:"seed,omitempty"`
	Recovery *Recovery `json:"recovery,omitempty"`
	Events   []Event   `json:"events,omitempty"`
}

// LoadJSON reads a schedule from JSON, rejecting unknown fields (a
// typo'd knob in a chaos plan must fail loudly, not silently no-op).
func LoadJSON(r io.Reader) (*Schedule, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Schedule
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads a schedule from a JSON file.
func LoadFile(path string) (*Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	defer f.Close()
	s, err := LoadJSON(f)
	if err != nil {
		return nil, fmt.Errorf("faults: %s: %w", path, err)
	}
	return s, nil
}

// hostRole distinguishes the two Where selector namespaces.
type hostRole int

const (
	roleInitiator hostRole = iota
	roleTarget
	roleController
)

// parseWhere splits "initiator:N" / "target:N" / "controller:N".
func parseWhere(where string) (hostRole, int, error) {
	role, idxStr, ok := strings.Cut(where, ":")
	if !ok {
		return 0, 0, fmt.Errorf("faults: where %q: want \"initiator:N\", \"target:N\", or \"controller:N\"", where)
	}
	idx, err := strconv.Atoi(idxStr)
	if err != nil || idx < 0 {
		return 0, 0, fmt.Errorf("faults: where %q: bad index %q", where, idxStr)
	}
	switch role {
	case "initiator":
		return roleInitiator, idx, nil
	case "target":
		return roleTarget, idx, nil
	case "controller":
		return roleController, idx, nil
	default:
		return 0, 0, fmt.Errorf("faults: where %q: unknown role %q", where, role)
	}
}

// Validate checks the schedule's internal consistency (selector syntax,
// parameter ranges). Selector indexes are range-checked later by
// Install, which knows the cluster size.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for i, ev := range s.Events {
		tag := fmt.Sprintf("faults: event %d (%s)", i, ev.Kind)
		if ev.At < 0 {
			return fmt.Errorf("%s: negative at_ns %d", tag, ev.At)
		}
		if ev.Duration < 0 || ev.Period < 0 {
			return fmt.Errorf("%s: negative duration/period", tag)
		}
		role, idx, err := parseWhere(ev.Where)
		if err != nil {
			return fmt.Errorf("%s: %w", tag, err)
		}
		// The controller selector namespace belongs to exactly one kind.
		if (role == roleController) != (ev.Kind == ControllerCrash) {
			if role == roleController {
				return fmt.Errorf("%s: %q: only controller-crash targets the controller", tag, ev.Where)
			}
			return fmt.Errorf("%s: %q must name the controller (\"controller:0\")", tag, ev.Where)
		}
		switch ev.Kind {
		case LinkDown, LinkUp:
			// No extra parameters.
		case LinkFlap:
			if ev.Count < 1 {
				return fmt.Errorf("%s: count %d, want >= 1", tag, ev.Count)
			}
			if ev.Duration <= 0 {
				return fmt.Errorf("%s: needs a positive duration_ns (down time)", tag)
			}
			if ev.Count > 1 && ev.Period <= ev.Duration {
				return fmt.Errorf("%s: period %v must exceed down time %v", tag, ev.Period, ev.Duration)
			}
		case Drop, Corrupt:
			if ev.Probability <= 0 || ev.Probability > 1 {
				return fmt.Errorf("%s: probability %g outside (0,1]", tag, ev.Probability)
			}
		case SSDSlow:
			if ev.Factor < 1 {
				return fmt.Errorf("%s: factor %g, want >= 1", tag, ev.Factor)
			}
			if role != roleTarget {
				return fmt.Errorf("%s: %q must name a target", tag, ev.Where)
			}
		case TargetStall, TelemetryStall:
			if ev.Duration <= 0 {
				return fmt.Errorf("%s: needs a positive duration_ns", tag)
			}
			if role != roleTarget {
				return fmt.Errorf("%s: %q must name a target", tag, ev.Where)
			}
		case PFCStorm:
			if ev.Duration <= 0 {
				return fmt.Errorf("%s: needs a positive duration_ns (pause time)", tag)
			}
			if ev.Count > 1 && ev.Period <= 0 {
				return fmt.Errorf("%s: repetition needs a positive period_ns", tag)
			}
		case CtrlDrop:
			if ev.Probability <= 0 || ev.Probability > 1 {
				return fmt.Errorf("%s: probability %g outside (0,1]", tag, ev.Probability)
			}
			if role != roleTarget {
				return fmt.Errorf("%s: %q must name a target", tag, ev.Where)
			}
		case CtrlDelay:
			if ev.Factor < 1 {
				return fmt.Errorf("%s: factor %g, want >= 1", tag, ev.Factor)
			}
			if role != roleTarget {
				return fmt.Errorf("%s: %q must name a target", tag, ev.Where)
			}
		case CtrlPartition:
			if ev.Duration <= 0 {
				return fmt.Errorf("%s: needs a positive duration_ns", tag)
			}
			if role != roleTarget {
				return fmt.Errorf("%s: %q must name a target", tag, ev.Where)
			}
		case ControllerCrash:
			if idx != 0 {
				return fmt.Errorf("%s: %q: one controller domain per cluster, want \"controller:0\"", tag, ev.Where)
			}
		default:
			return fmt.Errorf("%s: unknown kind", tag)
		}
	}
	return s.validateOverlaps()
}

// windowedKinds are the fault kinds whose active windows on one
// selector must not overlap: two simultaneous ssd-slow windows on the
// same device (or two drop probabilities on one link) would silently
// shadow each other — the second expiry restores the pre-fault state
// while the first window is notionally still active.
var windowedKinds = map[Kind]bool{
	Drop: true, Corrupt: true, SSDSlow: true, TargetStall: true, TelemetryStall: true,
	CtrlDrop: true, CtrlDelay: true, CtrlPartition: true, ControllerCrash: true,
}

// validateOverlaps rejects overlapping contradictory windows of the
// same kind on the same selector, naming both offending event indexes.
func (s *Schedule) validateOverlaps() error {
	type win struct {
		idx int
		at  sim.Time
		dur sim.Time // 0 = persists forever
	}
	groups := make(map[string][]win)
	for i, ev := range s.Events {
		if !windowedKinds[ev.Kind] {
			continue
		}
		key := string(ev.Kind) + "\x00" + ev.Where
		groups[key] = append(groups[key], win{idx: i, at: ev.At, dur: ev.Duration})
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ws := groups[k]
		sort.SliceStable(ws, func(i, j int) bool { return ws[i].at < ws[j].at })
		for i := 1; i < len(ws); i++ {
			prev, cur := ws[i-1], ws[i]
			if prev.dur == 0 || cur.at < prev.at+prev.dur {
				kind, where, _ := strings.Cut(k, "\x00")
				return fmt.Errorf(
					"faults: event %d (%s on %s at %d ns) overlaps event %d (active %d..%s ns): windows of one kind on one selector must not overlap",
					cur.idx, kind, where, cur.at, prev.idx, prev.at, windowEnd(prev.at, prev.dur))
			}
		}
	}
	return nil
}

// windowEnd renders a window's end for error messages ("forever" for
// persistent faults).
func windowEnd(at, dur sim.Time) string {
	if dur == 0 {
		return "forever"
	}
	return strconv.FormatInt(int64(at+dur), 10)
}

// Repeat expands one windowed fault into count copies spaced period
// apart, scaling Factor by factorStep each step (for ssd-slow aging
// staircases; pass 1 or 0 to keep Factor constant). The period must
// exceed the event's duration or the expansion would violate the
// overlap rule Validate enforces.
func Repeat(ev Event, count int, period sim.Time, factorStep float64) []Event {
	if count < 1 {
		count = 1
	}
	out := make([]Event, 0, count)
	f := ev.Factor
	for i := 0; i < count; i++ {
		e := ev
		e.At = ev.At + sim.Time(i)*period
		e.Factor = f
		out = append(out, e)
		if factorStep > 0 {
			f *= factorStep
		}
	}
	return out
}
