package nvmeof

import (
	"testing"

	"srcsim/internal/sim"
	"srcsim/internal/ssd"
	"srcsim/internal/trace"
)

// TestRetryRecoversFromLoss: a command capsule lost to a transient drop
// window must be retransmitted after the timeout and complete once the
// loss clears.
func TestRetryRecoversFromLoss(t *testing.T) {
	r := newRig(t, 40e9, ssd.ConfigA())
	r.ini.SetRetryPolicy(RetryPolicy{Timeout: 500 * sim.Microsecond, MaxRetries: 3})
	var completed int
	r.ini.OnComplete = func(trace.Request, bool, sim.Time) { completed++ }
	r.ini.OnFailed = func(trace.Request, sim.Time) { t.Error("op failed despite retries") }

	uplink := r.ini.Node.Ports()[0]
	uplink.SetLoss(1, 0) // every capsule dropped on the initiator's egress
	r.eng.After(600*sim.Microsecond, func() { uplink.SetLoss(0, 0) })

	r.ini.Submit(trace.Request{ID: 1, Op: trace.Read, LBA: 0, Size: 4 << 10}, r.tgt.Node)
	r.eng.RunUntilIdle()

	if completed != 1 {
		t.Fatalf("completed %d, want 1", completed)
	}
	if r.ini.Timeouts == 0 || r.ini.Retries == 0 {
		t.Fatalf("recovery never fired: timeouts=%d retries=%d", r.ini.Timeouts, r.ini.Retries)
	}
	if r.ini.FailedOps != 0 {
		t.Fatalf("FailedOps = %d, want 0", r.ini.FailedOps)
	}
}

// TestRetriesExhaustedFails: with the link permanently lossy, the op
// must fail after MaxRetries attempts and report via OnFailed — never
// hang the run.
func TestRetriesExhaustedFails(t *testing.T) {
	r := newRig(t, 40e9, ssd.ConfigA())
	r.ini.SetRetryPolicy(RetryPolicy{Timeout: 100 * sim.Microsecond, MaxRetries: 2})
	var completed, failed int
	r.ini.OnComplete = func(trace.Request, bool, sim.Time) { completed++ }
	r.ini.OnFailed = func(req trace.Request, at sim.Time) {
		if req.ID != 1 {
			t.Errorf("failed op ID %d, want 1", req.ID)
		}
		failed++
	}

	r.ini.Node.Ports()[0].SetLoss(1, 0)
	r.ini.Submit(trace.Request{ID: 1, Op: trace.Read, LBA: 0, Size: 4 << 10}, r.tgt.Node)
	r.eng.RunUntilIdle()

	if completed != 0 || failed != 1 {
		t.Fatalf("completed=%d failed=%d, want 0/1", completed, failed)
	}
	if r.ini.FailedOps != 1 {
		t.Fatalf("FailedOps = %d", r.ini.FailedOps)
	}
	// Initial attempt + MaxRetries retransmissions each time out.
	if r.ini.Timeouts != 3 || r.ini.Retries != 2 {
		t.Fatalf("timeouts=%d retries=%d, want 3/2", r.ini.Timeouts, r.ini.Retries)
	}
}

// TestTargetDedupsReplays: a timeout shorter than device latency causes
// retransmissions of a command the target is already executing; the
// target must drop the replays and the op completes exactly once.
func TestTargetDedupsReplays(t *testing.T) {
	r := newRig(t, 40e9, ssd.ConfigA())
	// ConfigA read latency is ~190us end to end; 50us timeout guarantees
	// retransmits while the original is still in flight.
	r.ini.SetRetryPolicy(RetryPolicy{Timeout: 50 * sim.Microsecond, MaxRetries: 5})
	var completed int
	r.ini.OnComplete = func(trace.Request, bool, sim.Time) { completed++ }
	r.ini.OnFailed = func(trace.Request, sim.Time) { t.Error("op failed") }

	r.ini.Submit(trace.Request{ID: 1, Op: trace.Read, LBA: 0, Size: 4 << 10}, r.tgt.Node)
	r.eng.RunUntilIdle()

	if completed != 1 {
		t.Fatalf("completed %d, want exactly 1", completed)
	}
	if r.tgt.DupsDropped == 0 {
		t.Fatal("target never deduplicated a replayed command")
	}
	if r.tgt.ReadsServed != 1 {
		t.Fatalf("target served %d reads, want 1", r.tgt.ReadsServed)
	}
}

// TestStaleResponseAccounted: when retries exhaust before the device
// responds, the eventual response must be counted stale and its credit
// returned instead of completing a dead op.
func TestStaleResponseAccounted(t *testing.T) {
	r := newRig(t, 40e9, ssd.ConfigA())
	r.ini.SetRetryPolicy(RetryPolicy{Timeout: 20 * sim.Microsecond, MaxRetries: 1})
	var completed, failed int
	r.ini.OnComplete = func(trace.Request, bool, sim.Time) { completed++ }
	r.ini.OnFailed = func(trace.Request, sim.Time) { failed++ }

	r.ini.Submit(trace.Request{ID: 1, Op: trace.Read, LBA: 0, Size: 4 << 10}, r.tgt.Node)
	r.eng.RunUntilIdle()

	// The op failed at ~45us; the device's response landed at ~190us.
	if completed != 0 || failed != 1 {
		t.Fatalf("completed=%d failed=%d, want 0/1", completed, failed)
	}
	if r.ini.StaleResponses != 1 {
		t.Fatalf("StaleResponses = %d, want 1", r.ini.StaleResponses)
	}
}
