// Package nvmeof binds the network simulator to the SSD simulator as
// NVMe-over-RDMA: Initiators submit NVMe commands over fabric flows to
// Targets, Targets feed their device through an nvme.Arbiter and return
// read data (inbound flows) or write acknowledgements, mirroring Fig. 1
// of the paper.
//
// Flow layout per (initiator, target) pair — separate queue pairs keep
// small capsules from head-of-line blocking behind bulk data, as in real
// NVMe-oF:
//
//	initiator → target:  command flow (read capsules),
//	                     write flow   (write capsules + payload)
//	target → initiator:  data flow    (read payload)  ← DCQCN throttles this
//	                     ack flow     (write completions)
//
// The data flow's DCQCN reaction point is the paper's congestion-signal
// source: SRC subscribes to its rate changes via Target.OnReadRate.
package nvmeof

import (
	"fmt"

	"srcsim/internal/netsim"
	"srcsim/internal/nvme"
	"srcsim/internal/obs"
	"srcsim/internal/sim"
	"srcsim/internal/ssd"
	"srcsim/internal/trace"
)

// CommandSize is the wire size of an NVMe-oF capsule (bytes).
const CommandSize = 64

// wireReq is the payload carried with a command to the target.
type wireReq struct {
	Req  trace.Request
	From netsim.NodeID
}

// wireResp is the payload carried back to the initiator.
type wireResp struct {
	Req      trace.Request
	ReadData bool
	// ack returns TXQ credit to the target once the data is delivered
	// (the RDMA-level acknowledgement, collapsed in-process).
	ack func()
}

// Unit is one SSD instance of a target's flash array: a device plus the
// arbiter feeding it (the baseline MultiRR or the paper's SSQ).
type Unit struct {
	Dev *ssd.Device
	Arb nvme.Arbiter
}

// Target is a storage node: a host NIC plus a flash array of one or more
// SSD instances (the paper launches multiple MQSim instances per target).
// Requests are striped across units by LBA so same-address requests
// always meet the same device.
type Target struct {
	Node  *netsim.Node
	Units []Unit

	// OnReadRate, if set, observes DCQCN rate changes (bits/s) on any of
	// this target's read-data flows — the pause/retrieval events SRC
	// consumes. The flow whose rate changed is passed along.
	OnReadRate func(flow *netsim.Flow, oldBps, newBps float64)

	// OnCommandArrive, if set, sees every command as it is submitted to
	// the arbiter (the SRC workload monitor hooks this).
	OnCommandArrive func(req trace.Request, at sim.Time)

	// OnWriteComplete, if set, fires when the device finishes a write
	// (the paper measures write throughput at targets).
	OnWriteComplete func(req trace.Request, at sim.Time)

	net       *netsim.Network
	dataFlows map[netsim.NodeID]*netsim.Flow
	ackFlows  map[netsim.NodeID]*netsim.Flow

	// TXQ credit accounting (see TXQCap): read data handed to the fabric
	// consumes credit; delivery returns it. When credit runs out, device
	// completions park in the shared CQ and the devices stall — the
	// paper's Sec. II-B degradation mechanism.
	txqCap    int64
	txqCredit int64
	// txqCreditLow is the credit low-water mark: how close the target
	// came to (or how deeply it sat at) TXQ exhaustion.
	txqCreditLow int64

	// Counters.
	ReadsServed, WritesServed uint64
}

// DefaultTXQCap bounds in-flight read data per target (bytes).
const DefaultTXQCap = 1 << 20

// unitStripe is the LBA striping granularity across array units.
const unitStripe = 1 << 20

// NewTarget wires a target over the given flash-array units: incoming
// capsules are submitted to the owning unit's arbiter, and device
// completions are returned over the fabric. NewTarget takes over each
// device's OnComplete callback and completion Gate; use the Target hooks
// for instrumentation. txqCap bounds in-flight read data (bytes; 0 uses
// DefaultTXQCap, negative disables the backpressure model).
func NewTarget(net *netsim.Network, node *netsim.Node, units []Unit, txqCap int64) *Target {
	if len(units) == 0 {
		panic("nvmeof: target needs at least one unit")
	}
	if txqCap == 0 {
		txqCap = DefaultTXQCap
	}
	t := &Target{
		Node: node, Units: units, net: net,
		dataFlows: make(map[netsim.NodeID]*netsim.Flow),
		ackFlows:  make(map[netsim.NodeID]*netsim.Flow),
		txqCap:    txqCap, txqCredit: txqCap, txqCreditLow: txqCap,
	}
	node.NIC.OnMessage = t.onMessage
	for _, u := range units {
		u.Dev.OnComplete = t.onDeviceComplete
		if txqCap > 0 {
			u.Dev.Gate = (*txqGate)(t)
		}
	}
	return t
}

// txqGate implements ssd.Gate over the target's TXQ credit: reads need
// credit for their payload; writes pass freely (their completions are
// tiny) but still honour CQ FIFO order via the device's parked queue.
type txqGate Target

// Admit implements ssd.Gate.
func (g *txqGate) Admit(c *nvme.Command) bool {
	t := (*Target)(g)
	if c.Op != trace.Read {
		return true
	}
	need := int64(c.Size)
	if t.txqCredit >= need || t.txqCredit == t.txqCap {
		// The second clause prevents a request larger than the whole
		// cap from wedging the pipeline.
		t.txqCredit -= need
		if t.txqCredit < t.txqCreditLow {
			t.txqCreditLow = t.txqCredit
		}
		return true
	}
	return false
}

// returnCredit releases TXQ credit and unblocks parked completions.
func (t *Target) returnCredit(n int64) {
	t.txqCredit += n
	if t.txqCredit > t.txqCap {
		t.txqCredit = t.txqCap
	}
	for _, u := range t.Units {
		u.Dev.ReleaseParked()
	}
}

// TXQCredit returns the remaining in-flight read-data budget.
func (t *Target) TXQCredit() int64 { return t.txqCredit }

// TXQCreditLow returns the smallest credit balance ever reached — 0 (or
// below, for oversize admissions) means the TXQ filled and device
// completions were parking.
func (t *Target) TXQCreditLow() int64 { return t.txqCreditLow }

// CollectMetrics folds the target's end-of-run counters into a metrics
// registry; counters accumulate across targets sharing labels. Nil reg
// is a no-op.
func (t *Target) CollectMetrics(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	reg.Counter("nvmeof", "reads_served", labels...).Add(float64(t.ReadsServed))
	reg.Counter("nvmeof", "writes_served", labels...).Add(float64(t.WritesServed))
	reg.Gauge("nvmeof", "txq_credit_low_bytes", labels...).SetMin(float64(t.txqCreditLow))
	reg.Gauge("nvmeof", "txq_backlog_end_bytes", labels...).SetMax(float64(t.TXQBacklog()))
}

// unitOf routes an LBA to its array unit.
func (t *Target) unitOf(lba uint64) Unit {
	return t.Units[(lba/unitStripe)%uint64(len(t.Units))]
}

func (t *Target) eng() *sim.Engine { return t.Units[0].Dev.Engine() }

func (t *Target) onMessage(_ *netsim.Flow, _ uint64, _ int, payload any) {
	wr, ok := payload.(wireReq)
	if !ok {
		panic(fmt.Sprintf("nvmeof: target %s received unexpected payload %T", t.Node.Name, payload))
	}
	now := t.eng().Now()
	if t.OnCommandArrive != nil {
		t.OnCommandArrive(wr.Req, now)
	}
	u := t.unitOf(wr.Req.LBA)
	u.Arb.Submit(&nvme.Command{
		ID:        wr.Req.ID,
		Op:        wr.Req.Op,
		LBA:       wr.Req.LBA,
		Size:      wr.Req.Size,
		Submitted: now,
		UserData:  wr,
	})
	u.Dev.Kick()
}

func (t *Target) onDeviceComplete(c *nvme.Command) {
	wr := c.UserData.(wireReq)
	now := t.eng().Now()
	if c.Op == trace.Read {
		t.ReadsServed++
		data := t.flowTo(t.dataFlows, wr.From, true)
		resp := wireResp{Req: wr.Req, ReadData: true}
		if t.txqCap > 0 {
			size := int64(c.Size)
			resp.ack = func() { t.returnCredit(size) }
		}
		data.Send(c.Size+CommandSize, resp)
		return
	}
	t.WritesServed++
	if t.OnWriteComplete != nil {
		t.OnWriteComplete(wr.Req, now)
	}
	ack := t.flowTo(t.ackFlows, wr.From, false)
	ack.Send(CommandSize, wireResp{Req: wr.Req})
}

// flowTo lazily creates the per-initiator return flow, attaching the
// DCQCN rate listener to data flows.
func (t *Target) flowTo(m map[netsim.NodeID]*netsim.Flow, dst netsim.NodeID, isData bool) *netsim.Flow {
	if f, ok := m[dst]; ok {
		return f
	}
	f := t.net.NewFlow(t.Node, t.net.Node(dst))
	m[dst] = f
	if isData {
		f.RP.SetRateListener(func(old, new float64) {
			if t.OnReadRate != nil {
				t.OnReadRate(f, old, new)
			}
		})
	}
	return f
}

// DataFlows returns the read-data flows created so far.
func (t *Target) DataFlows() []*netsim.Flow {
	out := make([]*netsim.Flow, 0, len(t.dataFlows))
	for _, f := range t.dataFlows {
		out = append(out, f)
	}
	return out
}

// ReadSendRate returns the sum of DCQCN rates (bits/s) across the
// target's read-data flows: the fabric's current demanded data sending
// rate for this target.
func (t *Target) ReadSendRate() float64 {
	var sum float64
	for _, f := range t.dataFlows {
		sum += f.RP.Rate()
	}
	return sum
}

// TXQBacklog returns bytes of read data held back by congestion control
// (flow queues plus the port queue) — the wasted SSD work under
// DCQCN-only.
func (t *Target) TXQBacklog() int64 {
	var total int64
	for _, f := range t.dataFlows {
		total += f.Backlog()
	}
	return total + t.Node.NIC.TXQBytes()
}

// Initiator is a compute node submitting I/O to targets.
type Initiator struct {
	Node *netsim.Node

	// OnComplete fires when a request finishes (read data fully
	// received, or write ack received).
	OnComplete func(req trace.Request, readData bool, at sim.Time)

	net        *netsim.Network
	eng        *sim.Engine
	cmdFlows   map[netsim.NodeID]*netsim.Flow
	writeFlows map[netsim.NodeID]*netsim.Flow

	// Counters.
	ReadBytesReceived int64
	ReadsCompleted    uint64
	WritesCompleted   uint64
	Submitted         uint64
}

// NewInitiator wires an initiator on the given host node.
func NewInitiator(net *netsim.Network, eng *sim.Engine, node *netsim.Node) *Initiator {
	ini := &Initiator{
		Node: node, net: net, eng: eng,
		cmdFlows:   make(map[netsim.NodeID]*netsim.Flow),
		writeFlows: make(map[netsim.NodeID]*netsim.Flow),
	}
	node.NIC.OnMessage = ini.onMessage
	return ini
}

// Submit sends one request to the target node. Reads travel as small
// capsules; writes carry their payload.
func (ini *Initiator) Submit(req trace.Request, target *netsim.Node) {
	ini.Submitted++
	wr := wireReq{Req: req, From: ini.Node.ID}
	if req.Op == trace.Read {
		ini.flowTo(ini.cmdFlows, target.ID).Send(CommandSize, wr)
		return
	}
	ini.flowTo(ini.writeFlows, target.ID).Send(CommandSize+req.Size, wr)
}

func (ini *Initiator) flowTo(m map[netsim.NodeID]*netsim.Flow, dst netsim.NodeID) *netsim.Flow {
	if f, ok := m[dst]; ok {
		return f
	}
	f := ini.net.NewFlow(ini.Node, ini.net.Node(dst))
	m[dst] = f
	return f
}

func (ini *Initiator) onMessage(_ *netsim.Flow, _ uint64, size int, payload any) {
	resp, ok := payload.(wireResp)
	if !ok {
		panic(fmt.Sprintf("nvmeof: initiator %s received unexpected payload %T", ini.Node.Name, payload))
	}
	if resp.ReadData {
		ini.ReadsCompleted++
		ini.ReadBytesReceived += int64(resp.Req.Size)
	} else {
		ini.WritesCompleted++
	}
	if ini.OnComplete != nil {
		ini.OnComplete(resp.Req, resp.ReadData, ini.eng.Now())
	}
	if resp.ack != nil {
		resp.ack()
	}
}
