// Package nvmeof binds the network simulator to the SSD simulator as
// NVMe-over-RDMA: Initiators submit NVMe commands over fabric flows to
// Targets, Targets feed their device through an nvme.Arbiter and return
// read data (inbound flows) or write acknowledgements, mirroring Fig. 1
// of the paper.
//
// Flow layout per (initiator, target) pair — separate queue pairs keep
// small capsules from head-of-line blocking behind bulk data, as in real
// NVMe-oF:
//
//	initiator → target:  command flow (read capsules),
//	                     write flow   (write capsules + payload)
//	target → initiator:  data flow    (read payload)  ← DCQCN throttles this
//	                     ack flow     (write completions)
//
// The data flow's DCQCN reaction point is the paper's congestion-signal
// source: SRC subscribes to its rate changes via Target.OnReadRate.
package nvmeof

import (
	"fmt"

	"srcsim/internal/netsim"
	"srcsim/internal/nvme"
	"srcsim/internal/obs"
	"srcsim/internal/obs/timeseries"
	"srcsim/internal/sim"
	"srcsim/internal/ssd"
	"srcsim/internal/trace"
)

// CommandSize is the wire size of an NVMe-oF capsule (bytes).
const CommandSize = 64

// capsule is the payload riding a command to the target and back: the
// request on the outbound leg, mutated in place into the response on the
// return leg. One capsule makes the whole round trip and is recycled at
// the owning initiator, so the steady-state command path allocates
// nothing per I/O. Payloads travel as *capsule — a pointer in an
// interface — which also avoids the boxing allocation the old value
// payloads paid on every Send.
type capsule struct {
	Req  trace.Request
	From netsim.NodeID

	// Response leg.
	ReadData bool

	// TXQ credit attached to a read response (t nil = none). acked
	// collapses the RDMA-level delivery acknowledgement and the leak-
	// recovery timer into exactly one credit return.
	t      *Target
	credit int64
	acked  bool
	// timerArmed marks a capsule referenced by a pending credit-recovery
	// timer: it must not be recycled (the timer callback would alias a
	// reused capsule), so it is left to the garbage collector instead.
	timerArmed bool

	pool *capsulePool
}

// ackCredit returns the capsule's TXQ credit to its target, once.
func (c *capsule) ackCredit() {
	if c.t == nil || c.acked {
		return
	}
	c.acked = true
	c.t.returnCredit(c.credit)
}

// capsuleCreditExpire is the credit-leak recovery timer continuation: if
// the read data carrying this capsule was lost on the wire, the delivery
// ack never fires and this returns the credit instead.
func capsuleCreditExpire(x any) { x.(*capsule).ackCredit() }

// capsulePool recycles capsules per initiator; gated by
// sim.PoolingEnabled at construction.
type capsulePool struct {
	free []*capsule
	on   bool
}

func (p *capsulePool) get() *capsule {
	if k := len(p.free); k > 0 {
		c := p.free[k-1]
		p.free[k-1] = nil
		p.free = p.free[:k-1]
		return c
	}
	return &capsule{pool: p}
}

// put recycles a capsule that reached the end of its round trip. Capsules
// with an armed recovery timer are skipped (see timerArmed).
func (p *capsulePool) put(c *capsule) {
	if c.timerArmed {
		return
	}
	*c = capsule{pool: p}
	if p.on {
		p.free = append(p.free, c)
	}
}

// RetryPolicy configures per-command expiry and retransmission at an
// initiator (the NVMe-oF command timeout). The zero value disables
// timeouts entirely — the pre-fault behaviour where commands wait
// forever — so existing setups are unchanged.
type RetryPolicy struct {
	// Timeout is the per-attempt expiry, measured from each
	// (re)submission. Zero or negative disables the whole policy.
	Timeout sim.Time
	// MaxRetries bounds retransmissions per command (default 3); a
	// command failing its last retry is abandoned and reported via
	// Initiator.OnFailed.
	MaxRetries int
	// BackoffBase is the delay before the first retransmission; attempt
	// k waits min(BackoffBase << (k-1), BackoffCap). Defaults: Timeout/4
	// and 8×BackoffBase.
	BackoffBase sim.Time
	BackoffCap  sim.Time
}

// Enabled reports whether the policy arms expiry timers.
func (p RetryPolicy) Enabled() bool { return p.Timeout > 0 }

// WithDefaults fills unset fields of an enabled policy; a disabled
// policy stays the zero value.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if !p.Enabled() {
		return RetryPolicy{}
	}
	if p.MaxRetries <= 0 {
		p.MaxRetries = 3
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = p.Timeout / 4
		if p.BackoffBase <= 0 {
			p.BackoffBase = 1
		}
	}
	if p.BackoffCap < p.BackoffBase {
		p.BackoffCap = 8 * p.BackoffBase
	}
	return p
}

// backoff returns the delay before retransmission attempt k (k >= 1).
func (p RetryPolicy) backoff(attempt int) sim.Time {
	d := p.BackoffBase
	for i := 1; i < attempt; i++ {
		d <<= 1
		if d >= p.BackoffCap || d <= 0 {
			return p.BackoffCap
		}
	}
	if d > p.BackoffCap {
		return p.BackoffCap
	}
	return d
}

// Unit is one SSD instance of a target's flash array: a device plus the
// arbiter feeding it (the baseline MultiRR or the paper's SSQ).
type Unit struct {
	Dev *ssd.Device
	Arb nvme.Arbiter
}

// Target is a storage node: a host NIC plus a flash array of one or more
// SSD instances (the paper launches multiple MQSim instances per target).
// Requests are striped across units by LBA so same-address requests
// always meet the same device.
type Target struct {
	Node  *netsim.Node
	Units []Unit

	// OnReadRate, if set, observes DCQCN rate changes (bits/s) on any of
	// this target's read-data flows — the pause/retrieval events SRC
	// consumes. The flow whose rate changed is passed along.
	OnReadRate func(flow *netsim.Flow, oldBps, newBps float64)

	// OnCommandArrive, if set, sees every command as it is submitted to
	// the arbiter (the SRC workload monitor hooks this).
	OnCommandArrive func(req trace.Request, at sim.Time)

	// OnWriteComplete, if set, fires when the device finishes a write
	// (the paper measures write throughput at targets).
	OnWriteComplete func(req trace.Request, at sim.Time)

	net       *netsim.Network
	dataFlows map[netsim.NodeID]*netsim.Flow
	ackFlows  map[netsim.NodeID]*netsim.Flow

	// TXQ credit accounting (see TXQCap): read data handed to the fabric
	// consumes credit; delivery returns it. When credit runs out, device
	// completions park in the shared CQ and the devices stall — the
	// paper's Sec. II-B degradation mechanism.
	txqCap    int64
	txqCredit int64
	// txqCreditLow is the credit low-water mark: how close the target
	// came to (or how deeply it sat at) TXQ exhaustion.
	txqCreditLow int64
	// creditHeld mirrors credit currently held by in-flight read data, so
	// the auditor can verify exact conservation: txqCredit + creditHeld
	// == txqCap at every instant (see AuditInvariants).
	creditHeld int64
	// OversizeAdmits counts reads larger than the whole TXQ cap admitted
	// via the anti-wedge clause; they legitimately drive credit negative.
	OversizeAdmits uint64

	// inflight tracks commands between arrival and device completion so
	// retransmitted duplicates (the initiator timed out but the original
	// is still being served) are dropped instead of executed twice.
	inflight map[dedupKey]struct{}

	// cmdFree recycles nvme.Commands: a command is dead once the device's
	// OnComplete fires (arbiters drop their references at Fetch), so the
	// steady-state submission path reuses it. Gated by sim.PoolingEnabled
	// at construction.
	cmdFree []*nvme.Command
	poolOn  bool

	// creditTimeout, when positive, bounds how long delivered-but-lost
	// read data may hold TXQ credit: if the initiator-side ack never
	// arrives (the data was dropped on the wire), the credit is returned
	// after this delay instead of leaking forever and wedging the
	// devices. Zero (the default) keeps the pre-fault wait-forever
	// behaviour.
	creditTimeout sim.Time

	// Counters.
	ReadsServed, WritesServed uint64
	// DupsDropped counts retransmitted commands discarded because the
	// original was still in flight at this target.
	DupsDropped uint64
}

// dedupKey identifies a command uniquely across initiators: request IDs
// are per-trace, so the same ID may arrive from different hosts.
type dedupKey struct {
	from netsim.NodeID
	id   uint64
}

// DefaultTXQCap bounds in-flight read data per target (bytes).
const DefaultTXQCap = 1 << 20

// unitStripe is the LBA striping granularity across array units.
const unitStripe = 1 << 20

// NewTarget wires a target over the given flash-array units: incoming
// capsules are submitted to the owning unit's arbiter, and device
// completions are returned over the fabric. NewTarget takes over each
// device's OnComplete callback and completion Gate; use the Target hooks
// for instrumentation. txqCap bounds in-flight read data (bytes; 0 uses
// DefaultTXQCap, negative disables the backpressure model).
func NewTarget(net *netsim.Network, node *netsim.Node, units []Unit, txqCap int64) *Target {
	if len(units) == 0 {
		panic("nvmeof: target needs at least one unit")
	}
	if txqCap == 0 {
		txqCap = DefaultTXQCap
	}
	t := &Target{
		Node: node, Units: units, net: net,
		dataFlows: make(map[netsim.NodeID]*netsim.Flow),
		ackFlows:  make(map[netsim.NodeID]*netsim.Flow),
		txqCap:    txqCap, txqCredit: txqCap, txqCreditLow: txqCap,
		inflight: make(map[dedupKey]struct{}),
		poolOn:   sim.PoolingEnabled(),
	}
	node.NIC.OnMessage = t.onMessage
	for _, u := range units {
		u.Dev.OnComplete = t.onDeviceComplete
		if txqCap > 0 {
			u.Dev.Gate = (*txqGate)(t)
		}
	}
	return t
}

// txqGate implements ssd.Gate over the target's TXQ credit: reads need
// credit for their payload; writes pass freely (their completions are
// tiny) but still honour CQ FIFO order via the device's parked queue.
type txqGate Target

// Admit implements ssd.Gate.
func (g *txqGate) Admit(c *nvme.Command) bool {
	t := (*Target)(g)
	if c.Op != trace.Read {
		return true
	}
	need := int64(c.Size)
	if t.txqCredit >= need || t.txqCredit == t.txqCap {
		// The second clause prevents a request larger than the whole
		// cap from wedging the pipeline.
		if t.txqCredit < need {
			t.OversizeAdmits++
		}
		t.txqCredit -= need
		t.creditHeld += need
		if t.txqCredit < t.txqCreditLow {
			t.txqCreditLow = t.txqCredit
		}
		return true
	}
	return false
}

// returnCredit releases TXQ credit and unblocks parked completions.
func (t *Target) returnCredit(n int64) {
	t.creditHeld -= n
	t.txqCredit += n
	if t.txqCredit > t.txqCap {
		t.txqCredit = t.txqCap
	}
	for _, u := range t.Units {
		u.Dev.ReleaseParked()
	}
}

// SetCreditTimeout arms (or, with zero, disarms) the TXQ credit-leak
// recovery timer; see the creditTimeout field.
func (t *Target) SetCreditTimeout(d sim.Time) { t.creditTimeout = d }

// TXQCredit returns the remaining in-flight read-data budget.
func (t *Target) TXQCredit() int64 { return t.txqCredit }

// TXQCreditLow returns the smallest credit balance ever reached — 0 (or
// below, for oversize admissions) means the TXQ filled and device
// completions were parking.
func (t *Target) TXQCreditLow() int64 { return t.txqCreditLow }

// InFlight returns the number of commands currently between arrival and
// device completion on this target.
func (t *Target) InFlight() int { return len(t.inflight) }

// SampleSeries is the target's flight-recorder probe: TXQ credit and
// backlog (the paper's Sec. II-B degradation site), in-flight command
// count, and the aggregate read-data sending rate. Read-only.
func (t *Target) SampleSeries(track string, emit timeseries.Emit) {
	emit(track, "txq_credit_bytes", timeseries.Gauge, float64(t.txqCredit))
	emit(track, "txq_backlog_bytes", timeseries.Gauge, float64(t.TXQBacklog()))
	emit(track, "inflight_cmds", timeseries.Gauge, float64(len(t.inflight)))
	emit(track, "read_send_gbps", timeseries.Gauge, t.ReadSendRate()/1e9)
	emit(track, "dups_dropped", timeseries.Counter, float64(t.DupsDropped))
}

// CollectMetrics folds the target's end-of-run counters into a metrics
// registry; counters accumulate across targets sharing labels. Nil reg
// is a no-op.
func (t *Target) CollectMetrics(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	reg.Counter("nvmeof", "reads_served", labels...).Add(float64(t.ReadsServed))
	reg.Counter("nvmeof", "writes_served", labels...).Add(float64(t.WritesServed))
	reg.Counter("nvmeof", "dups_dropped", labels...).Add(float64(t.DupsDropped))
	reg.Gauge("nvmeof", "txq_credit_low_bytes", labels...).SetMin(float64(t.txqCreditLow))
	reg.Gauge("nvmeof", "txq_backlog_end_bytes", labels...).SetMax(float64(t.TXQBacklog()))
}

// unitOf routes an LBA to its array unit.
func (t *Target) unitOf(lba uint64) Unit {
	return t.Units[(lba/unitStripe)%uint64(len(t.Units))]
}

func (t *Target) eng() *sim.Engine { return t.Units[0].Dev.Engine() }

func (t *Target) allocCmd() *nvme.Command {
	if k := len(t.cmdFree); k > 0 {
		cmd := t.cmdFree[k-1]
		t.cmdFree[k-1] = nil
		t.cmdFree = t.cmdFree[:k-1]
		return cmd
	}
	return &nvme.Command{}
}

func (t *Target) freeCmd(cmd *nvme.Command) {
	*cmd = nvme.Command{}
	if t.poolOn {
		t.cmdFree = append(t.cmdFree, cmd)
	}
}

func (t *Target) onMessage(_ *netsim.Flow, _ uint64, _ int, payload any) {
	c, ok := payload.(*capsule)
	if !ok {
		panic(fmt.Sprintf("nvmeof: target %s received unexpected payload %T", t.Node.Name, payload))
	}
	key := dedupKey{from: c.From, id: c.Req.ID}
	if _, dup := t.inflight[key]; dup {
		t.DupsDropped++
		c.pool.put(c)
		return
	}
	t.inflight[key] = struct{}{}
	now := t.eng().Now()
	if t.OnCommandArrive != nil {
		t.OnCommandArrive(c.Req, now)
	}
	u := t.unitOf(c.Req.LBA)
	cmd := t.allocCmd()
	cmd.ID = c.Req.ID
	cmd.Op = c.Req.Op
	cmd.LBA = c.Req.LBA
	cmd.Size = c.Req.Size
	cmd.Submitted = now
	cmd.UserData = c
	u.Arb.Submit(cmd)
	u.Dev.Kick()
}

func (t *Target) onDeviceComplete(cmd *nvme.Command) {
	c := cmd.UserData.(*capsule)
	now := t.eng().Now()
	delete(t.inflight, dedupKey{from: c.From, id: c.Req.ID})
	op, size := cmd.Op, cmd.Size
	t.freeCmd(cmd)
	if op == trace.Read {
		t.ReadsServed++
		data := t.flowTo(t.dataFlows, c.From, true)
		c.ReadData = true
		if t.txqCap > 0 {
			c.t = t
			c.credit = int64(size)
			if t.creditTimeout > 0 {
				// Leak recovery: if the data message is lost on the wire,
				// the initiator-side ack never fires; without this timer
				// the credit is gone for good and the devices wedge.
				c.timerArmed = true
				t.eng().AfterArg(t.creditTimeout, capsuleCreditExpire, c)
			}
		}
		data.Send(size+CommandSize, c)
		return
	}
	t.WritesServed++
	if t.OnWriteComplete != nil {
		t.OnWriteComplete(c.Req, now)
	}
	ack := t.flowTo(t.ackFlows, c.From, false)
	c.ReadData = false
	ack.Send(CommandSize, c)
}

// flowTo lazily creates the per-initiator return flow, attaching the
// DCQCN rate listener to data flows.
func (t *Target) flowTo(m map[netsim.NodeID]*netsim.Flow, dst netsim.NodeID, isData bool) *netsim.Flow {
	if f, ok := m[dst]; ok {
		return f
	}
	f := t.net.NewFlow(t.Node, t.net.Node(dst))
	m[dst] = f
	if isData {
		f.RP.SetRateListener(func(old, new float64) {
			if t.OnReadRate != nil {
				t.OnReadRate(f, old, new)
			}
		})
	}
	return f
}

// DataFlows returns the read-data flows created so far.
func (t *Target) DataFlows() []*netsim.Flow {
	out := make([]*netsim.Flow, 0, len(t.dataFlows))
	for _, f := range t.dataFlows {
		out = append(out, f)
	}
	return out
}

// ReadSendRate returns the sum of DCQCN rates (bits/s) across the
// target's read-data flows: the fabric's current demanded data sending
// rate for this target.
func (t *Target) ReadSendRate() float64 {
	var sum float64
	for _, f := range t.dataFlows {
		sum += f.RP.Rate()
	}
	return sum
}

// TXQBacklog returns bytes of read data held back by congestion control
// (flow queues plus the port queue) — the wasted SSD work under
// DCQCN-only.
func (t *Target) TXQBacklog() int64 {
	var total int64
	for _, f := range t.dataFlows {
		total += f.Backlog()
	}
	return total + t.Node.NIC.TXQBytes()
}

// Initiator is a compute node submitting I/O to targets.
type Initiator struct {
	Node *netsim.Node

	// OnComplete fires when a request finishes (read data fully
	// received, or write ack received).
	OnComplete func(req trace.Request, readData bool, at sim.Time)

	// OnFailed fires when a request exhausts its retry budget and is
	// abandoned (only with a retry policy set). A request reports
	// exactly one of OnComplete or OnFailed.
	OnFailed func(req trace.Request, at sim.Time)

	net        *netsim.Network
	eng        *sim.Engine
	cmdFlows   map[netsim.NodeID]*netsim.Flow
	writeFlows map[netsim.NodeID]*netsim.Flow

	retry   RetryPolicy
	pending map[uint64]*pendingOp
	caps    capsulePool

	// Counters.
	ReadBytesReceived int64
	ReadsCompleted    uint64
	WritesCompleted   uint64
	Submitted         uint64
	// Retries counts retransmissions, Timeouts expiry-timer firings
	// (every retry implies a timeout, but the final timeout of a failed
	// op does not retry), FailedOps abandoned requests, and
	// StaleResponses completions that arrived after their command had
	// already completed (a retransmit duplicate) or failed.
	Retries        uint64
	Timeouts       uint64
	FailedOps      uint64
	StaleResponses uint64
}

// pendingOp is an in-flight command awaiting completion under a retry
// policy.
type pendingOp struct {
	ini     *Initiator
	req     trace.Request
	target  *netsim.Node
	attempt int
	timer   sim.Handle
}

// NewInitiator wires an initiator on the given host node.
func NewInitiator(net *netsim.Network, eng *sim.Engine, node *netsim.Node) *Initiator {
	ini := &Initiator{
		Node: node, net: net, eng: eng,
		cmdFlows:   make(map[netsim.NodeID]*netsim.Flow),
		writeFlows: make(map[netsim.NodeID]*netsim.Flow),
	}
	ini.caps.on = sim.PoolingEnabled()
	node.NIC.OnMessage = ini.onMessage
	return ini
}

// SetRetryPolicy installs a per-command timeout/retry policy (defaults
// applied). Must be set before the first Submit; the zero policy leaves
// timeouts disabled.
func (ini *Initiator) SetRetryPolicy(p RetryPolicy) {
	ini.retry = p.WithDefaults()
	if ini.retry.Enabled() && ini.pending == nil {
		ini.pending = make(map[uint64]*pendingOp)
	}
}

// Submit sends one request to the target node. Reads travel as small
// capsules; writes carry their payload.
func (ini *Initiator) Submit(req trace.Request, target *netsim.Node) {
	ini.Submitted++
	if ini.retry.Enabled() {
		op := &pendingOp{ini: ini, req: req, target: target}
		ini.pending[req.ID] = op
		ini.armTimer(op)
	}
	ini.send(req, target)
}

func (ini *Initiator) send(req trace.Request, target *netsim.Node) {
	c := ini.caps.get()
	c.Req = req
	c.From = ini.Node.ID
	if req.Op == trace.Read {
		ini.flowTo(ini.cmdFlows, target.ID).Send(CommandSize, c)
		return
	}
	ini.flowTo(ini.writeFlows, target.ID).Send(CommandSize+req.Size, c)
}

func (ini *Initiator) armTimer(op *pendingOp) {
	op.timer = ini.eng.AfterArg(ini.retry.Timeout, pendingExpire, op)
}

func pendingExpire(x any) {
	op := x.(*pendingOp)
	op.ini.expire(op)
}

// pendingResend retransmits a timed-out command once its backoff elapses.
func pendingResend(x any) {
	op := x.(*pendingOp)
	ini := op.ini
	if ini.pending[op.req.ID] != op {
		return // completed during the backoff wait
	}
	ini.send(op.req, op.target)
	ini.armTimer(op)
}

// expire handles a command whose expiry timer fired: retransmit after a
// capped exponential backoff, or abandon once the retry budget is spent.
func (ini *Initiator) expire(op *pendingOp) {
	if ini.pending[op.req.ID] != op {
		return // completed while the timer event was in flight
	}
	ini.Timeouts++
	if op.attempt >= ini.retry.MaxRetries {
		delete(ini.pending, op.req.ID)
		ini.FailedOps++
		if ini.OnFailed != nil {
			ini.OnFailed(op.req, ini.eng.Now())
		}
		return
	}
	op.attempt++
	ini.Retries++
	ini.eng.AfterArg(ini.retry.backoff(op.attempt), pendingResend, op)
}

// CollectMetrics folds the initiator's recovery counters into a metrics
// registry; counters accumulate across initiators sharing labels. Nil
// reg is a no-op.
func (ini *Initiator) CollectMetrics(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	reg.Counter("nvmeof", "retries", labels...).Add(float64(ini.Retries))
	reg.Counter("nvmeof", "timeouts", labels...).Add(float64(ini.Timeouts))
	reg.Counter("nvmeof", "failed_ops", labels...).Add(float64(ini.FailedOps))
	reg.Counter("nvmeof", "stale_responses", labels...).Add(float64(ini.StaleResponses))
}

// SampleSeries is the initiator's flight-recorder probe: outstanding
// retry-armed commands and the recovery counters. Read-only.
func (ini *Initiator) SampleSeries(track string, emit timeseries.Emit) {
	emit(track, "pending_cmds", timeseries.Gauge, float64(len(ini.pending)))
	emit(track, "retries", timeseries.Counter, float64(ini.Retries))
	emit(track, "timeouts", timeseries.Counter, float64(ini.Timeouts))
}

func (ini *Initiator) flowTo(m map[netsim.NodeID]*netsim.Flow, dst netsim.NodeID) *netsim.Flow {
	if f, ok := m[dst]; ok {
		return f
	}
	f := ini.net.NewFlow(ini.Node, ini.net.Node(dst))
	m[dst] = f
	return f
}

func (ini *Initiator) onMessage(_ *netsim.Flow, _ uint64, size int, payload any) {
	c, ok := payload.(*capsule)
	if !ok {
		panic(fmt.Sprintf("nvmeof: initiator %s received unexpected payload %T", ini.Node.Name, payload))
	}
	if ini.retry.Enabled() {
		op, ok := ini.pending[c.Req.ID]
		if !ok {
			// Duplicate completion (a retransmit raced the original) or a
			// completion for an already-abandoned command. Still return
			// the TXQ credit — each response carries its own.
			ini.StaleResponses++
			c.ackCredit()
			c.pool.put(c)
			return
		}
		ini.eng.Cancel(op.timer)
		delete(ini.pending, c.Req.ID)
	}
	if c.ReadData {
		ini.ReadsCompleted++
		ini.ReadBytesReceived += int64(c.Req.Size)
	} else {
		ini.WritesCompleted++
	}
	if ini.OnComplete != nil {
		ini.OnComplete(c.Req, c.ReadData, ini.eng.Now())
	}
	c.ackCredit()
	c.pool.put(c)
}
