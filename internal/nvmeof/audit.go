package nvmeof

import "srcsim/internal/guard"

// AuditInvariants verifies the target's TXQ credit conservation and
// in-flight command accounting. Read-only, O(units):
//
//   - exact credit conservation: txqCredit + creditHeld == txqCap —
//     every byte of credit is either available or attributed to a
//     specific in-flight read response, so a leak (a response that never
//     returns its credit) is caught within one audit period;
//   - credit never exceeds the cap, held credit never goes negative,
//     and credit only goes negative while an oversize admission (a read
//     larger than the whole cap) is outstanding;
//   - in-flight census: the dedup window population equals the commands
//     actually queued in the arbiters plus outstanding in the devices —
//     a dangling window entry (replay-window leak) would block the
//     command ID forever.
func (t *Target) AuditInvariants() []guard.Violation {
	var vs []guard.Violation
	if t.txqCap > 0 {
		if t.txqCredit+t.creditHeld != t.txqCap {
			vs = append(vs, guard.Violationf("nvmeof", "txq-credit-conservation",
				"credit %d + held %d != cap %d", t.txqCredit, t.creditHeld, t.txqCap))
		}
		if t.txqCredit > t.txqCap {
			vs = append(vs, guard.Violationf("nvmeof", "txq-credit-cap",
				"credit %d > cap %d", t.txqCredit, t.txqCap))
		}
		if t.creditHeld < 0 {
			vs = append(vs, guard.Violationf("nvmeof", "txq-credit-held-nonnegative",
				"held %d < 0", t.creditHeld))
		}
		if t.txqCredit < 0 && t.OversizeAdmits == 0 {
			vs = append(vs, guard.Violationf("nvmeof", "txq-credit-nonnegative",
				"credit %d < 0 with no oversize admissions", t.txqCredit))
		}
	}
	var queued int
	for _, u := range t.Units {
		queued += u.Arb.Pending() + u.Dev.Outstanding()
	}
	if len(t.inflight) != queued {
		vs = append(vs, guard.Violationf("nvmeof", "inflight-census",
			"dedup window holds %d commands but arbiters+devices hold %d",
			len(t.inflight), queued))
	}
	return vs
}

// InjectCreditLeak deliberately discards n bytes of TXQ credit without
// touching the held-credit ledger, simulating a lost-ack leak. Test
// hook for the conservation auditor: the leak breaks
// txq-credit-conservation and must be caught within one audit period.
func (t *Target) InjectCreditLeak(n int64) { t.txqCredit -= n }

// InflightCount returns the dedup-window population (commands between
// arrival and device completion).
func (t *Target) InflightCount() int { return len(t.inflight) }

// TXQCap returns the configured in-flight read-data budget.
func (t *Target) TXQCap() int64 { return t.txqCap }

// ParkedCompletions sums finished-but-unadmitted completions across the
// target's devices: commands done with flash work but blocked on TXQ
// credit.
func (t *Target) ParkedCompletions() int {
	var n int
	for _, u := range t.Units {
		n += u.Dev.Parked()
	}
	return n
}

// AuditInvariants verifies the initiator's retry-window accounting.
// With a retry policy armed, every submitted command is either pending
// or terminally accounted (completed or failed), and every expiry-timer
// firing either retried or failed its command.
func (ini *Initiator) AuditInvariants() []guard.Violation {
	var vs []guard.Violation
	terminal := ini.ReadsCompleted + ini.WritesCompleted + ini.FailedOps
	if ini.retry.Enabled() {
		if uint64(len(ini.pending))+terminal != ini.Submitted {
			vs = append(vs, guard.Violationf("nvmeof", "retry-window-conservation",
				"pending %d + completed %d + failed %d != submitted %d",
				len(ini.pending), ini.ReadsCompleted+ini.WritesCompleted,
				ini.FailedOps, ini.Submitted))
		}
		if ini.Timeouts != ini.Retries+ini.FailedOps {
			vs = append(vs, guard.Violationf("nvmeof", "retry-timeout-accounting",
				"timeouts %d != retries %d + failed %d",
				ini.Timeouts, ini.Retries, ini.FailedOps))
		}
	} else if terminal > ini.Submitted {
		vs = append(vs, guard.Violationf("nvmeof", "completion-overrun",
			"completed+failed %d > submitted %d", terminal, ini.Submitted))
	}
	return vs
}

// PendingCount returns commands awaiting completion under the retry
// policy (0 when the policy is disabled).
func (ini *Initiator) PendingCount() int { return len(ini.pending) }
