package nvmeof

import (
	"testing"

	"srcsim/internal/dcqcn"
	"srcsim/internal/netsim"
	"srcsim/internal/nvme"
	"srcsim/internal/sim"
	"srcsim/internal/ssd"
	"srcsim/internal/trace"
)

// rig is a 1-initiator / 1-target fabric over a rack.
type rig struct {
	eng *sim.Engine
	net *netsim.Network
	ini *Initiator
	tgt *Target
	dev *ssd.Device
	arb *nvme.SSQ
}

func newRig(t testing.TB, linkRate float64, cfg ssd.Config) *rig {
	t.Helper()
	eng := sim.NewEngine()
	net, err := netsim.NewNetwork(eng, netsim.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	hosts := netsim.BuildRack(net, 2, linkRate, sim.Microsecond)
	arb := nvme.NewSSQ(1, 1)
	dev, err := ssd.New(eng, cfg, arb)
	if err != nil {
		t.Fatal(err)
	}
	tgt := NewTarget(net, hosts[1], []Unit{{Dev: dev, Arb: arb}}, 0)
	ini := NewInitiator(net, eng, hosts[0])
	return &rig{eng: eng, net: net, ini: ini, tgt: tgt, dev: dev, arb: arb}
}

func TestReadRoundTrip(t *testing.T) {
	r := newRig(t, 40e9, ssd.ConfigA())
	var completed []trace.Request
	var wasData bool
	r.ini.OnComplete = func(req trace.Request, readData bool, at sim.Time) {
		completed = append(completed, req)
		wasData = readData
	}
	req := trace.Request{ID: 1, Op: trace.Read, LBA: 4096, Size: 16 << 10}
	r.ini.Submit(req, r.tgt.Node)
	r.eng.RunUntilIdle()
	if len(completed) != 1 || completed[0].ID != 1 || !wasData {
		t.Fatalf("read completion wrong: %+v data=%v", completed, wasData)
	}
	if r.ini.ReadBytesReceived != 16<<10 {
		t.Fatalf("read bytes %d", r.ini.ReadBytesReceived)
	}
	if r.tgt.ReadsServed != 1 {
		t.Fatalf("target reads served %d", r.tgt.ReadsServed)
	}
	// End-to-end latency: command capsule + device (~190us) + data
	// return; the clock should be in the hundreds of microseconds.
	if r.eng.Now() > sim.Millisecond {
		t.Fatalf("read RTT %v too large", r.eng.Now())
	}
}

func TestWriteRoundTrip(t *testing.T) {
	r := newRig(t, 40e9, ssd.ConfigA())
	var acked int
	r.ini.OnComplete = func(req trace.Request, readData bool, at sim.Time) {
		if readData {
			t.Error("write completion flagged as read data")
		}
		acked++
	}
	var deviceWrites int
	r.tgt.OnWriteComplete = func(req trace.Request, at sim.Time) { deviceWrites++ }
	r.ini.Submit(trace.Request{ID: 2, Op: trace.Write, LBA: 0, Size: 23 << 10}, r.tgt.Node)
	r.eng.RunUntilIdle()
	if acked != 1 || deviceWrites != 1 {
		t.Fatalf("acked=%d deviceWrites=%d", acked, deviceWrites)
	}
	if r.tgt.WritesServed != 1 {
		t.Fatalf("writes served %d", r.tgt.WritesServed)
	}
}

func TestCommandArriveHookSeesWorkload(t *testing.T) {
	r := newRig(t, 40e9, ssd.ConfigA())
	var seen []trace.Request
	r.tgt.OnCommandArrive = func(req trace.Request, at sim.Time) { seen = append(seen, req) }
	for i := uint64(0); i < 10; i++ {
		op := trace.Read
		if i%2 == 0 {
			op = trace.Write
		}
		r.ini.Submit(trace.Request{ID: i, Op: op, LBA: i << 20, Size: 8192}, r.tgt.Node)
	}
	r.eng.RunUntilIdle()
	if len(seen) != 10 {
		t.Fatalf("monitor hook saw %d/10 commands", len(seen))
	}
}

func TestManyRequestsAllComplete(t *testing.T) {
	r := newRig(t, 40e9, ssd.ConfigB())
	done := 0
	r.ini.OnComplete = func(trace.Request, bool, sim.Time) { done++ }
	const n = 500
	for i := uint64(0); i < n; i++ {
		op := trace.Read
		if i%3 == 0 {
			op = trace.Write
		}
		r.ini.Submit(trace.Request{ID: i, Op: op, LBA: i << 18, Size: 16 << 10}, r.tgt.Node)
	}
	r.eng.RunUntilIdle()
	if done != n {
		t.Fatalf("completed %d/%d", done, n)
	}
	if r.ini.Submitted != n {
		t.Fatalf("submitted %d", r.ini.Submitted)
	}
}

func TestReadRateListenerFiresUnderIncast(t *testing.T) {
	// The paper's congestion scenario: two targets stream read data into
	// one initiator's downlink; ECN -> CNP -> DCQCN cuts the targets'
	// data-flow rates (pause events), then recovers (retrieval events).
	eng := sim.NewEngine()
	net, err := netsim.NewNetwork(eng, netsim.Config{
		Seed:  11,
		DCQCN: dcqcn.Config{LineRate: 5e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	hosts := netsim.BuildRack(net, 3, 5e9, sim.Microsecond)
	ini := NewInitiator(net, eng, hosts[0])
	var pauseEvents, retrievalEvents int
	var cnps uint64
	for h := 1; h <= 2; h++ {
		arb := nvme.NewSSQ(1, 1)
		dev, err := ssd.New(eng, ssd.ConfigB(), arb)
		if err != nil {
			t.Fatal(err)
		}
		tgt := NewTarget(net, hosts[h], []Unit{{Dev: dev, Arb: arb}}, 0)
		tgt.OnReadRate = func(f *netsim.Flow, old, new float64) {
			if new < old {
				pauseEvents++
			} else {
				retrievalEvents++
			}
		}
		for i := uint64(0); i < 1500; i++ {
			ini.Submit(trace.Request{ID: uint64(h)<<32 | i, Op: trace.Read, LBA: i << 18, Size: 32 << 10}, tgt.Node)
		}
		defer func(tg *Target) { cnps += tg.Node.NIC.CNPsReceived }(tgt)
	}
	eng.RunUntilIdle()
	if pauseEvents == 0 {
		t.Fatal("no pause (rate-down) events under incast")
	}
	if retrievalEvents == 0 {
		t.Fatal("no retrieval (rate-up) events after congestion")
	}
}

func TestReadSendRateAggregates(t *testing.T) {
	r := newRig(t, 40e9, ssd.ConfigA())
	if r.tgt.ReadSendRate() != 0 {
		t.Fatal("no data flows yet")
	}
	r.ini.Submit(trace.Request{ID: 1, Op: trace.Read, LBA: 0, Size: 4096}, r.tgt.Node)
	r.eng.RunUntilIdle()
	if len(r.tgt.DataFlows()) != 1 {
		t.Fatalf("data flows %d", len(r.tgt.DataFlows()))
	}
	if r.tgt.ReadSendRate() != 40e9 {
		t.Fatalf("read send rate %v, want line rate", r.tgt.ReadSendRate())
	}
}

func TestTXQBacklogVisibleDuringThrottle(t *testing.T) {
	r := newRig(t, 2e9, ssd.ConfigB())
	maxBacklog := int64(0)
	stop := r.eng.Ticker(sim.Millisecond, func() {
		if b := r.tgt.TXQBacklog(); b > maxBacklog {
			maxBacklog = b
		}
	})
	for i := uint64(0); i < 1000; i++ {
		r.ini.Submit(trace.Request{ID: i, Op: trace.Read, LBA: i << 18, Size: 32 << 10}, r.tgt.Node)
	}
	r.eng.Run(200 * sim.Millisecond)
	stop()
	r.eng.RunUntilIdle()
	if maxBacklog == 0 {
		t.Fatal("throttled reads never accumulated TXQ backlog")
	}
}

func TestTwoInitiatorsOneTarget(t *testing.T) {
	eng := sim.NewEngine()
	net, err := netsim.NewNetwork(eng, netsim.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hosts := netsim.BuildRack(net, 3, 40e9, sim.Microsecond)
	arb := nvme.NewSSQ(1, 1)
	dev, err := ssd.New(eng, ssd.ConfigA(), arb)
	if err != nil {
		t.Fatal(err)
	}
	tgt := NewTarget(net, hosts[2], []Unit{{Dev: dev, Arb: arb}}, 0)
	ini0 := NewInitiator(net, eng, hosts[0])
	ini1 := NewInitiator(net, eng, hosts[1])
	done0, done1 := 0, 0
	ini0.OnComplete = func(trace.Request, bool, sim.Time) { done0++ }
	ini1.OnComplete = func(trace.Request, bool, sim.Time) { done1++ }
	for i := uint64(0); i < 50; i++ {
		ini0.Submit(trace.Request{ID: i, Op: trace.Read, LBA: i << 20, Size: 8192}, tgt.Node)
		ini1.Submit(trace.Request{ID: 1000 + i, Op: trace.Write, LBA: (1000 + i) << 20, Size: 8192}, tgt.Node)
	}
	eng.RunUntilIdle()
	if done0 != 50 || done1 != 50 {
		t.Fatalf("completions %d/%d", done0, done1)
	}
	if len(tgt.DataFlows()) != 1 {
		t.Fatalf("expected 1 data flow (only ini0 reads), got %d", len(tgt.DataFlows()))
	}
}

func BenchmarkReadRoundTrips(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newRig(b, 40e9, ssd.ConfigB())
		for j := uint64(0); j < 200; j++ {
			r.ini.Submit(trace.Request{ID: j, Op: trace.Read, LBA: j << 18, Size: 16 << 10}, r.tgt.Node)
		}
		r.eng.RunUntilIdle()
	}
}
