package nvmeof

import (
	"testing"

	"srcsim/internal/netsim"
	"srcsim/internal/nvme"
	"srcsim/internal/sim"
	"srcsim/internal/ssd"
	"srcsim/internal/trace"
)

// newCappedRig builds a 1:1 rig with an explicit TXQ cap.
func newCappedRig(t testing.TB, linkRate float64, cfg ssd.Config, txqCap int64) *rig {
	t.Helper()
	eng := sim.NewEngine()
	net, err := netsim.NewNetwork(eng, netsim.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	hosts := netsim.BuildRack(net, 2, linkRate, sim.Microsecond)
	arb := nvme.NewSSQ(1, 1)
	dev, err := ssd.New(eng, cfg, arb)
	if err != nil {
		t.Fatal(err)
	}
	tgt := NewTarget(net, hosts[1], []Unit{{Dev: dev, Arb: arb}}, txqCap)
	ini := NewInitiator(net, eng, hosts[0])
	return &rig{eng: eng, net: net, ini: ini, tgt: tgt, dev: dev, arb: arb}
}

func TestTXQCreditConsumedAndRestored(t *testing.T) {
	r := newCappedRig(t, 40e9, ssd.ConfigB(), 256<<10)
	if r.tgt.TXQCredit() != 256<<10 {
		t.Fatalf("initial credit %d", r.tgt.TXQCredit())
	}
	done := 0
	r.ini.OnComplete = func(trace.Request, bool, sim.Time) { done++ }
	r.ini.Submit(trace.Request{ID: 1, Op: trace.Read, LBA: 0, Size: 64 << 10}, r.tgt.Node)
	r.eng.RunUntilIdle()
	if done != 1 {
		t.Fatalf("completions %d", done)
	}
	// Credit fully restored after delivery.
	if r.tgt.TXQCredit() != 256<<10 {
		t.Fatalf("credit %d after idle, want full restore", r.tgt.TXQCredit())
	}
}

func TestTXQCreditStallsDeviceUnderSlowLink(t *testing.T) {
	// A 1 Gbps link drains the 256 KiB TXQ slowly; the fast SSD-B must
	// park completions rather than buffering unbounded read data.
	r := newCappedRig(t, 1e9, ssd.ConfigB(), 256<<10)
	for i := uint64(0); i < 200; i++ {
		r.ini.Submit(trace.Request{ID: i, Op: trace.Read, LBA: i << 18, Size: 32 << 10}, r.tgt.Node)
	}
	// Let the pipeline fill.
	r.eng.Run(20 * sim.Millisecond)
	if r.dev.PeakParked == 0 {
		t.Fatal("device never parked completions behind the TXQ cap")
	}
	// In-flight read data must stay near the cap, not grow with the
	// backlog: flow backlog + consumed credit <= cap + one request.
	inflight := (256 << 10) - r.tgt.TXQCredit()
	if inflight > 256<<10+32<<10 {
		t.Fatalf("in-flight read data %d exceeds cap", inflight)
	}
	r.eng.RunUntilIdle()
	if r.ini.ReadsCompleted != 200 {
		t.Fatalf("reads completed %d", r.ini.ReadsCompleted)
	}
	if r.tgt.TXQCredit() != 256<<10 {
		t.Fatalf("credit leak: %d", r.tgt.TXQCredit())
	}
}

func TestOversizedRequestDoesNotWedge(t *testing.T) {
	// A read larger than the whole TXQ cap must still complete (the
	// full-credit escape hatch).
	r := newCappedRig(t, 40e9, ssd.ConfigA(), 64<<10)
	done := 0
	r.ini.OnComplete = func(trace.Request, bool, sim.Time) { done++ }
	r.ini.Submit(trace.Request{ID: 1, Op: trace.Read, LBA: 0, Size: 256 << 10}, r.tgt.Node)
	r.eng.RunUntilIdle()
	if done != 1 {
		t.Fatal("oversized read wedged the pipeline")
	}
	if r.tgt.TXQCredit() != 64<<10 {
		t.Fatalf("credit %d after oversized request", r.tgt.TXQCredit())
	}
}

func TestNegativeCapDisablesBackpressure(t *testing.T) {
	r := newCappedRig(t, 1e9, ssd.ConfigB(), -1)
	for i := uint64(0); i < 100; i++ {
		r.ini.Submit(trace.Request{ID: i, Op: trace.Read, LBA: i << 18, Size: 32 << 10}, r.tgt.Node)
	}
	r.eng.RunUntilIdle()
	if r.dev.PeakParked != 0 {
		t.Fatalf("parked %d with backpressure disabled", r.dev.PeakParked)
	}
	if r.ini.ReadsCompleted != 100 {
		t.Fatalf("completed %d", r.ini.ReadsCompleted)
	}
}

func TestWritesFlowWhileReadsParked(t *testing.T) {
	// With SRC's premise: when reads are parked on TXQ credit, newly
	// arriving writes still complete once the parked reads ahead of them
	// drain — but a pure-write stream on a separate device never parks.
	r := newCappedRig(t, 1e9, ssd.ConfigB(), 128<<10)
	writesDone := 0
	r.ini.OnComplete = func(req trace.Request, readData bool, at sim.Time) {
		if !readData {
			writesDone++
		}
	}
	for i := uint64(0); i < 50; i++ {
		r.ini.Submit(trace.Request{ID: i, Op: trace.Write, LBA: i << 18, Size: 16 << 10}, r.tgt.Node)
	}
	r.eng.RunUntilIdle()
	if writesDone != 50 {
		t.Fatalf("writes %d", writesDone)
	}
	if r.dev.PeakParked != 0 {
		t.Fatal("pure-write stream should never park")
	}
}
