package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"srcsim/internal/sim"
)

// The open JSONL request-trace format (schema version 1): line 1 is a
// header object naming the format and version, every following line is
// one request record. The format is the application-centric ingest
// boundary of the scenario toolchain — anything that can emit these
// records (a blktrace post-processor, a production I/O log scraper, a
// synthetic generator in another language) can drive the simulator,
// and scenario.Fit can refit any ingested trace into a reusable
// workload configuration.
//
//	{"format":"srcsim-trace","version":1}
//	{"ts_ns":0,"op":"R","lba":4096,"size":8192,"stream":"vol0"}
//	{"ts_ns":1350,"op":"W","lba":0,"size":4096,"initiator":0,"target":1}
//
// ts_ns is the arrival time in nanoseconds (non-negative), op is "R" or
// "W", lba and size are bytes (size positive), stream is an optional
// volume/stream tag, initiator/target optionally pin a request to
// cluster nodes. Decoding is strict: unknown fields, bad values, and a
// missing or unsupported header fail with the offending line number.

// JSONLFormat and JSONLVersion identify the open trace schema.
const (
	JSONLFormat  = "srcsim-trace"
	JSONLVersion = 1
)

// jsonlHeader is the first line of a JSONL trace file.
type jsonlHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
}

// jsonlRecord is one request line. Field order fixes the key order the
// writer emits, keeping files diff-friendly and byte-deterministic.
type jsonlRecord struct {
	TS        int64  `json:"ts_ns"`
	Op        string `json:"op"`
	LBA       uint64 `json:"lba"`
	Size      int    `json:"size"`
	Stream    string `json:"stream,omitempty"`
	Initiator int    `json:"initiator,omitempty"`
	Target    int    `json:"target,omitempty"`
}

// WriteJSONL encodes the trace in the open JSONL format: the version
// header followed by one record per request, in trace order.
func WriteJSONL(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(jsonlHeader{Format: JSONLFormat, Version: JSONLVersion})
	if err != nil {
		return fmt.Errorf("trace: jsonl header: %w", err)
	}
	bw.Write(hdr)
	bw.WriteByte('\n')
	for _, r := range t.Requests {
		rec := jsonlRecord{
			TS: int64(r.Arrival), Op: r.Op.String(), LBA: r.LBA, Size: r.Size,
			Stream: r.Stream, Initiator: r.Initiator, Target: r.Target,
		}
		b, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("trace: jsonl record %d: %w", r.ID, err)
		}
		bw.Write(b)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadJSONL decodes a trace written in the open JSONL format. Decoding
// is strict — unknown fields, malformed JSON, value-range violations,
// and header mismatches all fail with the 1-based line number. IDs are
// assigned in file order; the request order of the file is preserved
// (call Sort before replay if the source was not time-ordered).
func ReadJSONL(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trace: jsonl line 1: %w", err)
		}
		return nil, fmt.Errorf("trace: jsonl line 1: missing header %q", JSONLFormat)
	}
	var hdr jsonlHeader
	if err := decodeStrict(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("trace: jsonl line 1: bad header: %w", err)
	}
	if hdr.Format != JSONLFormat {
		return nil, fmt.Errorf("trace: jsonl line 1: format %q, want %q", hdr.Format, JSONLFormat)
	}
	if hdr.Version != JSONLVersion {
		return nil, fmt.Errorf("trace: jsonl line 1: unsupported version %d (decoder speaks %d)", hdr.Version, JSONLVersion)
	}

	t := &Trace{}
	line := 1
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rec jsonlRecord
		if err := decodeStrict(raw, &rec); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
		}
		if rec.TS < 0 {
			return nil, fmt.Errorf("trace: jsonl line %d: negative ts_ns %d", line, rec.TS)
		}
		var op Op
		switch rec.Op {
		case "R":
			op = Read
		case "W":
			op = Write
		default:
			return nil, fmt.Errorf("trace: jsonl line %d: bad op %q (want R or W)", line, rec.Op)
		}
		if rec.Size <= 0 {
			return nil, fmt.Errorf("trace: jsonl line %d: non-positive size %d", line, rec.Size)
		}
		if rec.Initiator < 0 || rec.Target < 0 {
			return nil, fmt.Errorf("trace: jsonl line %d: negative initiator/target", line)
		}
		t.Requests = append(t.Requests, Request{
			ID: uint64(len(t.Requests)), Op: op, LBA: rec.LBA, Size: rec.Size,
			Arrival: sim.Time(rec.TS), Stream: rec.Stream,
			Initiator: rec.Initiator, Target: rec.Target,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
	}
	return t, nil
}

// decodeStrict unmarshals one JSON line rejecting unknown fields and
// trailing garbage.
func decodeStrict(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON object")
	}
	return nil
}
