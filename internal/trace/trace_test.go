package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"srcsim/internal/sim"
)

func mkTrace(reqs ...Request) *Trace { return &Trace{Requests: reqs} }

func TestOpString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatal("Op strings")
	}
	if Op(9).String() != "Op(9)" {
		t.Fatal("unknown op string")
	}
}

func TestRequestOverlaps(t *testing.T) {
	a := Request{LBA: 100, Size: 50}
	cases := []struct {
		b    Request
		want bool
	}{
		{Request{LBA: 100, Size: 50}, true},
		{Request{LBA: 149, Size: 1}, true},
		{Request{LBA: 150, Size: 10}, false},
		{Request{LBA: 90, Size: 10}, false},
		{Request{LBA: 90, Size: 11}, true},
		{Request{LBA: 0, Size: 1000}, true},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%+v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("Overlaps symmetric (%+v)", c.b)
		}
	}
}

func TestSortStable(t *testing.T) {
	tr := mkTrace(
		Request{ID: 2, Arrival: 10},
		Request{ID: 1, Arrival: 10},
		Request{ID: 3, Arrival: 5},
	)
	tr.Sort()
	if tr.Requests[0].ID != 3 || tr.Requests[1].ID != 1 || tr.Requests[2].ID != 2 {
		t.Fatalf("sort order wrong: %+v", tr.Requests)
	}
}

func TestDurationAndTotals(t *testing.T) {
	tr := mkTrace(
		Request{Arrival: 100, Size: 10},
		Request{Arrival: 400, Size: 30},
	)
	if tr.Duration() != 300 {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	if tr.TotalBytes() != 40 {
		t.Fatalf("TotalBytes = %v", tr.TotalBytes())
	}
	if (&Trace{}).Duration() != 0 {
		t.Fatal("empty duration")
	}
}

func TestByOpAndWindow(t *testing.T) {
	tr := mkTrace(
		Request{ID: 0, Op: Read, Arrival: 0},
		Request{ID: 1, Op: Write, Arrival: 10},
		Request{ID: 2, Op: Read, Arrival: 20},
		Request{ID: 3, Op: Write, Arrival: 30},
	)
	r, w := tr.ByOp()
	if r.Len() != 2 || w.Len() != 2 {
		t.Fatalf("ByOp split %d/%d", r.Len(), w.Len())
	}
	win := tr.Window(10, 30)
	if win.Len() != 2 || win.Requests[0].ID != 1 || win.Requests[1].ID != 2 {
		t.Fatalf("Window = %+v", win.Requests)
	}
}

func TestMergeOrdersByArrival(t *testing.T) {
	a := mkTrace(Request{ID: 0, Arrival: 0}, Request{ID: 1, Arrival: 20})
	b := mkTrace(Request{ID: 2, Arrival: 10})
	m := a.Merge(b)
	if m.Len() != 3 {
		t.Fatalf("merge len %d", m.Len())
	}
	for i := 1; i < m.Len(); i++ {
		if m.Requests[i].Arrival < m.Requests[i-1].Arrival {
			t.Fatalf("merge unordered: %+v", m.Requests)
		}
	}
	// Originals untouched.
	if a.Len() != 2 || b.Len() != 1 {
		t.Fatal("merge mutated inputs")
	}
}

func TestScaleTime(t *testing.T) {
	tr := mkTrace(Request{Arrival: 100}, Request{Arrival: 200})
	sc := tr.ScaleTime(0.5)
	if sc.Requests[0].Arrival != 50 || sc.Requests[1].Arrival != 100 {
		t.Fatalf("ScaleTime wrong: %+v", sc.Requests)
	}
	if tr.Requests[0].Arrival != 100 {
		t.Fatal("ScaleTime mutated source")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive scale should panic")
		}
	}()
	tr.ScaleTime(0)
}

func TestExtractDirStats(t *testing.T) {
	// Four reads, 10us apart, alternating sizes 10k/30k: mean size 20k.
	us := sim.Microsecond
	reqs := []Request{
		{Op: Read, Size: 10000, Arrival: 0},
		{Op: Read, Size: 30000, Arrival: 10 * us},
		{Op: Read, Size: 10000, Arrival: 20 * us},
		{Op: Read, Size: 30000, Arrival: 30 * us},
	}
	d := ExtractDirStats(reqs)
	if d.Count != 4 {
		t.Fatalf("count %d", d.Count)
	}
	if d.MeanSize != 20000 {
		t.Fatalf("mean size %v", d.MeanSize)
	}
	if math.Abs(d.SizeSCV-0.25) > 1e-9 {
		t.Fatalf("size scv %v, want 0.25", d.SizeSCV)
	}
	if d.MeanInterArrival != float64(10*us) {
		t.Fatalf("mean inter-arrival %v", d.MeanInterArrival)
	}
	if d.InterArrivalSCV != 0 {
		t.Fatalf("constant arrivals should have SCV 0, got %v", d.InterArrivalSCV)
	}
	// 80KB over 30us = 2.667 GB/s
	wantFlow := 80000 / (30 * us).Seconds()
	if math.Abs(d.FlowSpeed-wantFlow)/wantFlow > 1e-9 {
		t.Fatalf("flow speed %v, want %v", d.FlowSpeed, wantFlow)
	}
}

func TestExtractDirStatsDegenerate(t *testing.T) {
	if d := ExtractDirStats(nil); d.Count != 0 || d.FlowSpeed != 0 {
		t.Fatalf("empty dir stats: %+v", d)
	}
	d := ExtractDirStats([]Request{{Size: 100, Arrival: 5}})
	if d.Count != 1 || d.MeanSize != 100 || d.MeanInterArrival != 0 || d.FlowSpeed != 0 {
		t.Fatalf("single-request stats: %+v", d)
	}
}

func TestExtractReadRatio(t *testing.T) {
	tr := mkTrace(
		Request{Op: Read, Size: 1, Arrival: 0},
		Request{Op: Read, Size: 1, Arrival: 1},
		Request{Op: Read, Size: 1, Arrival: 2},
		Request{Op: Write, Size: 1, Arrival: 3},
	)
	s := Extract(tr)
	if s.ReadRatio != 0.75 {
		t.Fatalf("read ratio %v", s.ReadRatio)
	}
	if s.Read.Count != 3 || s.Write.Count != 1 {
		t.Fatalf("per-dir counts %d/%d", s.Read.Count, s.Write.Count)
	}
	if !strings.Contains(s.String(), "readRatio=0.75") {
		t.Fatalf("String() = %q", s.String())
	}
	if e := Extract(&Trace{}); e.ReadRatio != 0 {
		t.Fatal("empty trace read ratio")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := mkTrace(
		Request{ID: 0, Op: Read, LBA: 4096, Size: 8192, Arrival: 1000, Initiator: 1, Target: 2},
		Request{ID: 1, Op: Write, LBA: 0, Size: 512, Arrival: 2000},
	)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("round trip len %d", got.Len())
	}
	for i := range tr.Requests {
		if tr.Requests[i] != got.Requests[i] {
			t.Fatalf("request %d: %+v != %+v", i, tr.Requests[i], got.Requests[i])
		}
	}
}

func TestCSVRejectsCorruptInput(t *testing.T) {
	cases := map[string]string{
		"bad header": "nope,op,lba_bytes,size_bytes,initiator,target\n",
		"bad op":     "arrival_ns,op,lba_bytes,size_bytes,initiator,target\n5,X,0,100,0,0\n",
		"bad size":   "arrival_ns,op,lba_bytes,size_bytes,initiator,target\n5,R,0,-3,0,0\n",
		"bad time":   "arrival_ns,op,lba_bytes,size_bytes,initiator,target\nzz,R,0,100,0,0\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// Property: CSV round trip preserves every field for arbitrary traces.
func TestPropertyCSVRoundTrip(t *testing.T) {
	f := func(ops []bool, sizes []uint16, arrivals []uint32) bool {
		n := len(ops)
		if len(sizes) < n {
			n = len(sizes)
		}
		if len(arrivals) < n {
			n = len(arrivals)
		}
		tr := &Trace{}
		for i := 0; i < n; i++ {
			op := Read
			if ops[i] {
				op = Write
			}
			tr.Requests = append(tr.Requests, Request{
				ID: uint64(i), Op: op, LBA: uint64(i) * 4096,
				Size: int(sizes[i]) + 1, Arrival: sim.Time(arrivals[i]),
			})
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil || got.Len() != tr.Len() {
			return false
		}
		for i := range tr.Requests {
			if tr.Requests[i] != got.Requests[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
