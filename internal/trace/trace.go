// Package trace defines the I/O request record shared by the workload
// generators, the NVMe-oF stack, and the SRC workload monitor, together
// with trace containers, statistics extraction (the inputs of the paper's
// feature extractor, Sec. III-B), transforms, and CSV round-tripping.
package trace

import (
	"fmt"
	"sort"

	"srcsim/internal/sim"
)

// Op is the I/O direction of a request.
type Op uint8

// Request operation kinds.
const (
	Read Op = iota
	Write
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Read:
		return "R"
	case Write:
		return "W"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Request is one block-level I/O operation. LBA and Size are in bytes
// (LBA is the byte offset of the first accessed block); Arrival is the
// submission time at the initiator.
type Request struct {
	ID      uint64
	Op      Op
	LBA     uint64
	Size    int
	Arrival sim.Time
	// Initiator and Target identify the issuing and serving node for
	// multi-node cluster traces; both are zero for single-device traces.
	Initiator int
	Target    int
	// Stream is an optional volume/stream tag carried by the open JSONL
	// trace format and stamped by the scenario compiler (the phase each
	// request came from). Empty for untagged traces; ignored by the CSV
	// and MSR codecs.
	Stream string
}

// End returns the byte offset one past the last accessed byte.
func (r Request) End() uint64 { return r.LBA + uint64(r.Size) }

// Overlaps reports whether two requests touch any common byte; the SSQ
// consistency check uses this to pin dependent requests to one queue.
func (r Request) Overlaps(o Request) bool {
	return r.LBA < o.End() && o.LBA < r.End()
}

// Trace is a time-ordered sequence of requests.
type Trace struct {
	Requests []Request
}

// Len returns the number of requests.
func (t *Trace) Len() int { return len(t.Requests) }

// Sort orders the requests by (Arrival, ID).
func (t *Trace) Sort() {
	sort.SliceStable(t.Requests, func(i, j int) bool {
		a, b := t.Requests[i], t.Requests[j]
		if a.Arrival != b.Arrival {
			return a.Arrival < b.Arrival
		}
		return a.ID < b.ID
	})
}

// Duration returns the arrival span from the first to the last request.
func (t *Trace) Duration() sim.Time {
	if len(t.Requests) == 0 {
		return 0
	}
	return t.Requests[len(t.Requests)-1].Arrival - t.Requests[0].Arrival
}

// Filter returns a new trace containing the requests for which keep
// returns true.
func (t *Trace) Filter(keep func(Request) bool) *Trace {
	out := &Trace{}
	for _, r := range t.Requests {
		if keep(r) {
			out.Requests = append(out.Requests, r)
		}
	}
	return out
}

// ByOp splits the trace into its read and write sub-traces.
func (t *Trace) ByOp() (reads, writes *Trace) {
	reads = t.Filter(func(r Request) bool { return r.Op == Read })
	writes = t.Filter(func(r Request) bool { return r.Op == Write })
	return reads, writes
}

// Window returns the requests with Arrival in [from, to).
func (t *Trace) Window(from, to sim.Time) *Trace {
	return t.Filter(func(r Request) bool { return r.Arrival >= from && r.Arrival < to })
}

// Merge interleaves t with other into a new time-ordered trace.
func (t *Trace) Merge(other *Trace) *Trace {
	out := &Trace{Requests: make([]Request, 0, len(t.Requests)+len(other.Requests))}
	out.Requests = append(out.Requests, t.Requests...)
	out.Requests = append(out.Requests, other.Requests...)
	out.Sort()
	return out
}

// ScaleTime multiplies every arrival time by factor, changing workload
// intensity while preserving the arrival pattern's shape.
func (t *Trace) ScaleTime(factor float64) *Trace {
	if factor <= 0 {
		panic(fmt.Sprintf("trace: non-positive time scale %v", factor))
	}
	out := &Trace{Requests: append([]Request(nil), t.Requests...)}
	for i := range out.Requests {
		out.Requests[i].Arrival = sim.Time(float64(out.Requests[i].Arrival) * factor)
	}
	return out
}

// ShiftTime returns a copy of the trace with every arrival offset by
// delta (the scenario compiler places a phase on the composed timeline
// with it). It panics if any shifted arrival would be negative.
func (t *Trace) ShiftTime(delta sim.Time) *Trace {
	out := &Trace{Requests: append([]Request(nil), t.Requests...)}
	for i := range out.Requests {
		a := out.Requests[i].Arrival + delta
		if a < 0 {
			panic(fmt.Sprintf("trace: shift by %v makes arrival %v negative", delta, out.Requests[i].Arrival))
		}
		out.Requests[i].Arrival = a
	}
	return out
}

// Rebase returns a copy of the trace with arrivals rebased so the first
// request (in time order) arrives at 0. The trace must be sorted.
func (t *Trace) Rebase() *Trace {
	if len(t.Requests) == 0 {
		return &Trace{}
	}
	return t.ShiftTime(-t.Requests[0].Arrival)
}

// TotalBytes returns the sum of request sizes.
func (t *Trace) TotalBytes() int64 {
	var s int64
	for _, r := range t.Requests {
		s += int64(r.Size)
	}
	return s
}
