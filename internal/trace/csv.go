package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"srcsim/internal/sim"
)

// csvHeader is the column layout used by WriteCSV/ReadCSV. It mirrors the
// common block-trace formats on the SNIA IOTTA repository (timestamp, op,
// offset, size) with explicit units.
var csvHeader = []string{"arrival_ns", "op", "lba_bytes", "size_bytes", "initiator", "target"}

// WriteCSV encodes the trace in a stable, diff-friendly text format.
func WriteCSV(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	row := make([]string, len(csvHeader))
	for _, r := range t.Requests {
		row[0] = strconv.FormatInt(int64(r.Arrival), 10)
		row[1] = r.Op.String()
		row[2] = strconv.FormatUint(r.LBA, 10)
		row[3] = strconv.Itoa(r.Size)
		row[4] = strconv.Itoa(r.Initiator)
		row[5] = strconv.Itoa(r.Target)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a trace written by WriteCSV. IDs are assigned in file
// order.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("trace: column %d is %q, want %q", i, header[i], want)
		}
	}
	t := &Trace{}
	for id := uint64(0); ; id++ {
		line := id + 2 // 1-based; the header is line 1
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read row: %w", err)
		}
		arrival, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil || arrival < 0 {
			return nil, fmt.Errorf("trace: line %d: bad arrival %q (want non-negative ns)", line, row[0])
		}
		var op Op
		switch row[1] {
		case "R":
			op = Read
		case "W":
			op = Write
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", line, row[1])
		}
		lba, err := strconv.ParseUint(row[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad lba %q", line, row[2])
		}
		size, err := strconv.Atoi(row[3])
		if err != nil || size <= 0 {
			return nil, fmt.Errorf("trace: line %d: bad size %q", line, row[3])
		}
		ini, err := strconv.Atoi(row[4])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad initiator %q", line, row[4])
		}
		tgt, err := strconv.Atoi(row[5])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad target %q", line, row[5])
		}
		t.Requests = append(t.Requests, Request{
			ID: id, Op: op, LBA: lba, Size: size,
			Arrival: sim.Time(arrival), Initiator: ini, Target: tgt,
		})
	}
	return t, nil
}
