package trace

import (
	"fmt"

	"srcsim/internal/sim"
	"srcsim/internal/stats"
)

// DirStats summarises one I/O direction of a trace: the statistics the
// paper's feature extractor computes per direction (Sec. III-B) plus the
// higher moments used for MMPP trace fitting (Sec. IV-A).
type DirStats struct {
	Count int

	// Request-size statistics (bytes).
	MeanSize float64
	SizeSCV  float64
	SizeSkew float64

	// Inter-arrival statistics (nanoseconds between consecutive requests
	// of this direction).
	MeanInterArrival float64
	InterArrivalSCV  float64
	InterArrivalSkew float64
	InterArrivalACF1 float64

	// FlowSpeed is the arrival flow speed: bytes arriving per second —
	// the feature the paper finds most important (weight 0.39).
	FlowSpeed float64
}

// Stats is the full per-trace characterisation.
type Stats struct {
	Read, Write DirStats
	// ReadRatio is reads / (reads + writes) by request count.
	ReadRatio float64
	Duration  sim.Time
}

// String renders a compact human-readable summary.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d(avg %.0fB) writes=%d(avg %.0fB) readRatio=%.2f dur=%v",
		s.Read.Count, s.Read.MeanSize, s.Write.Count, s.Write.MeanSize, s.ReadRatio, s.Duration)
}

// ExtractDirStats computes DirStats over the requests of a single
// direction, in arrival order.
func ExtractDirStats(reqs []Request) DirStats {
	d := DirStats{Count: len(reqs)}
	if len(reqs) == 0 {
		return d
	}
	var size stats.Moments
	for _, r := range reqs {
		size.Add(float64(r.Size))
	}
	d.MeanSize = size.Mean()
	d.SizeSCV = size.SCV()
	d.SizeSkew = size.Skewness()

	if len(reqs) >= 2 {
		inter := make([]float64, 0, len(reqs)-1)
		var im stats.Moments
		for i := 1; i < len(reqs); i++ {
			dt := float64(reqs[i].Arrival - reqs[i-1].Arrival)
			inter = append(inter, dt)
			im.Add(dt)
		}
		d.MeanInterArrival = im.Mean()
		d.InterArrivalSCV = im.SCV()
		d.InterArrivalSkew = im.Skewness()
		d.InterArrivalACF1 = stats.Autocorrelation(inter, 1)
	}

	span := reqs[len(reqs)-1].Arrival - reqs[0].Arrival
	if span > 0 {
		var total float64
		for _, r := range reqs {
			total += float64(r.Size)
		}
		d.FlowSpeed = total / span.Seconds()
	}
	return d
}

// Extract computes the full Stats of a trace. The trace must be
// time-ordered (call Sort first if in doubt).
func Extract(t *Trace) Stats {
	reads, writes := t.ByOp()
	s := Stats{
		Read:     ExtractDirStats(reads.Requests),
		Write:    ExtractDirStats(writes.Requests),
		Duration: t.Duration(),
	}
	total := s.Read.Count + s.Write.Count
	if total > 0 {
		s.ReadRatio = float64(s.Read.Count) / float64(total)
	}
	return s
}
