package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"srcsim/internal/sim"
)

// ReadMSR decodes a trace in the MSR Cambridge block-trace format, the
// most common public format on the SNIA IOTTA repository (where the
// paper's Fujitsu VDI and Tencent CBS traces live):
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// Timestamp and ResponseTime are in Windows filetime ticks (100 ns);
// Type is "Read" or "Write" (case-insensitive); Offset and Size are in
// bytes. Arrival times are rebased so the first request arrives at 0.
// Lines that are blank or start with '#' are skipped.
//
// An adopter with access to the real SNIA traces can feed them through
// this reader, extract their statistics with Extract, fit an MMPP with
// dist.FitMMPP2, or replay them directly on the cluster.
func ReadMSR(r io.Reader) (*Trace, error) {
	const tick = 100 // ns per filetime tick
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	t := &Trace{}
	var ticks []int64 // raw timestamps, rebased to their minimum below
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 6 {
			return nil, fmt.Errorf("trace: msr line %d has %d fields, want >= 6", lineNo, len(fields))
		}
		ts, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
		if err != nil || ts < 0 {
			return nil, fmt.Errorf("trace: msr line %d: bad timestamp %q (want non-negative ticks)", lineNo, fields[0])
		}
		var op Op
		switch strings.ToLower(strings.TrimSpace(fields[3])) {
		case "read", "r":
			op = Read
		case "write", "w":
			op = Write
		default:
			return nil, fmt.Errorf("trace: msr line %d type %q", lineNo, fields[3])
		}
		offset, err := strconv.ParseUint(strings.TrimSpace(fields[4]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: msr line %d offset: %w", lineNo, err)
		}
		size, err := strconv.Atoi(strings.TrimSpace(fields[5]))
		if err != nil || size <= 0 {
			return nil, fmt.Errorf("trace: msr line %d size %q", lineNo, fields[5])
		}
		ticks = append(ticks, ts)
		t.Requests = append(t.Requests, Request{
			ID:   uint64(len(t.Requests)),
			Op:   op,
			LBA:  offset,
			Size: size,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: msr scan: %w", err)
	}
	// Rebase to the minimum timestamp (not the first): MSR files are not
	// guaranteed time-ordered, and rebasing to the first line would give
	// earlier requests negative arrivals.
	var base int64
	for i, ts := range ticks {
		if i == 0 || ts < base {
			base = ts
		}
	}
	const maxTicks = int64(math.MaxInt64) / tick
	for i, ts := range ticks {
		if ts-base > maxTicks {
			return nil, fmt.Errorf("trace: msr timestamp span %d ticks overflows ns", ts-base)
		}
		t.Requests[i].Arrival = sim.Time((ts - base) * tick)
	}
	t.Sort()
	for i := range t.Requests {
		t.Requests[i].ID = uint64(i)
	}
	return t, nil
}
