package trace

import (
	"bytes"
	"strings"
	"testing"

	"srcsim/internal/sim"
)

func sampleTrace() *Trace {
	return &Trace{Requests: []Request{
		{ID: 0, Op: Read, LBA: 4096, Size: 8192, Arrival: 0, Stream: "vol0"},
		{ID: 1, Op: Write, LBA: 0, Size: 4096, Arrival: 1350, Initiator: 1, Target: 1},
		{ID: 2, Op: Read, LBA: 1 << 30, Size: 1 << 20, Arrival: 99999, Stream: "scan"},
	}}
}

// TestJSONLRoundTrip: write -> read must reproduce every field,
// including the stream tag the CSV codec does not carry.
func TestJSONLRoundTrip(t *testing.T) {
	in := sampleTrace()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatalf("write: %v", err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(out.Requests) != len(in.Requests) {
		t.Fatalf("got %d requests, want %d", len(out.Requests), len(in.Requests))
	}
	for i, want := range in.Requests {
		if out.Requests[i] != want {
			t.Errorf("request %d: got %+v, want %+v", i, out.Requests[i], want)
		}
	}
}

// TestJSONLDeterministicBytes: two writes of the same trace are
// byte-identical (the writer is part of the determinism surface).
func TestJSONLDeterministicBytes(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteJSONL(&a, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of one trace differ")
	}
	if !strings.HasPrefix(a.String(), `{"format":"srcsim-trace","version":1}`+"\n") {
		t.Fatalf("missing version header: %q", a.String()[:60])
	}
}

// TestJSONLEmptyTrace: a header-only file is a valid empty trace.
func TestJSONLEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, &Trace{}); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("got %d requests", out.Len())
	}
}

// TestJSONLStrictErrors: every malformed input fails with the offending
// 1-based line number in the message.
func TestJSONLStrictErrors(t *testing.T) {
	hdr := `{"format":"srcsim-trace","version":1}` + "\n"
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "line 1"},
		{"no header", `{"ts_ns":0,"op":"R","lba":0,"size":1}` + "\n", "line 1"},
		{"wrong format", `{"format":"other","version":1}` + "\n", `format "other"`},
		{"future version", `{"format":"srcsim-trace","version":2}` + "\n", "unsupported version 2"},
		{"unknown field", hdr + `{"ts_ns":0,"op":"R","lba":0,"size":1,"bogus":3}` + "\n", "line 2"},
		{"negative ts", hdr + `{"ts_ns":-1,"op":"R","lba":0,"size":1}` + "\n", "negative ts_ns"},
		{"bad op", hdr + `{"ts_ns":0,"op":"X","lba":0,"size":1}` + "\n", `bad op "X"`},
		{"zero size", hdr + `{"ts_ns":0,"op":"R","lba":0,"size":0}` + "\n", "non-positive size"},
		{"negative size", hdr + `{"ts_ns":0,"op":"W","lba":0,"size":-9}` + "\n", "non-positive size"},
		{"negative target", hdr + `{"ts_ns":0,"op":"R","lba":0,"size":1,"target":-1}` + "\n", "negative initiator/target"},
		{"trailing garbage", hdr + `{"ts_ns":0,"op":"R","lba":0,"size":1} extra` + "\n", "line 2"},
		{"not json", hdr + "ts,op,lba\n", "line 2"},
		{"third line", hdr + `{"ts_ns":0,"op":"R","lba":0,"size":1}` + "\n" + `{"op":"Q"}` + "\n", "line 3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadJSONL(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("accepted malformed input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestJSONLBlankLinesSkipped: blank lines between records are
// tolerated, mirroring the MSR reader's leniency for hand-edited files.
func TestJSONLBlankLinesSkipped(t *testing.T) {
	in := `{"format":"srcsim-trace","version":1}` + "\n\n" +
		`{"ts_ns":5,"op":"W","lba":0,"size":512}` + "\n\n"
	out, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Requests[0].Arrival != sim.Time(5) {
		t.Fatalf("got %+v", out.Requests)
	}
}

// TestJSONLPreservesFileOrder: like the CSV reader, the decoder keeps
// file order and assigns IDs sequentially; it does not sort.
func TestJSONLPreservesFileOrder(t *testing.T) {
	in := `{"format":"srcsim-trace","version":1}` + "\n" +
		`{"ts_ns":100,"op":"R","lba":0,"size":512}` + "\n" +
		`{"ts_ns":5,"op":"W","lba":0,"size":512}` + "\n"
	out, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Requests[0].Arrival != 100 || out.Requests[1].Arrival != 5 {
		t.Fatalf("order not preserved: %+v", out.Requests)
	}
	if out.Requests[0].ID != 0 || out.Requests[1].ID != 1 {
		t.Fatalf("IDs not file-ordered: %+v", out.Requests)
	}
}
