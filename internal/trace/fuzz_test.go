package trace

import (
	"strings"
	"testing"
)

// FuzzReadCSV: the CSV reader must never panic, and every accepted
// trace must satisfy the package invariants (positive sizes,
// non-negative arrivals).
func FuzzReadCSV(f *testing.F) {
	f.Add("arrival_ns,op,lba_bytes,size_bytes,initiator,target\n0,R,0,4096,0,0\n")
	f.Add("arrival_ns,op,lba_bytes,size_bytes,initiator,target\n100,W,8192,512,1,1\n5,R,0,1,0,0\n")
	f.Add("arrival_ns,op,lba_bytes,size_bytes,initiator,target\n-1,R,0,4096,0,0\n")
	f.Add("arrival_ns,op,lba_bytes,size_bytes,initiator,target\n0,X,0,4096,0,0\n")
	f.Add("arrival_ns,op,lba_bytes,size_bytes,initiator,target\n0,R,0,0,0,0\n")
	f.Add("bogus,header\n")
	f.Add("")
	f.Add("arrival_ns,op,lba_bytes,size_bytes,initiator,target\n0,R,18446744073709551615,4096,0,0\n")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		for i, r := range tr.Requests {
			if r.Size <= 0 {
				t.Fatalf("request %d accepted with size %d", i, r.Size)
			}
			if r.Arrival < 0 {
				t.Fatalf("request %d accepted with negative arrival %v", i, r.Arrival)
			}
		}
	})
}

// FuzzTraceJSONL: the open-format decoder must never panic; every
// accepted trace must satisfy the package invariants (positive sizes,
// non-negative arrivals, file-ordered IDs) and survive a write -> read
// round trip unchanged — the JSONL writer and decoder are the public
// ingest boundary of the scenario toolchain.
func FuzzTraceJSONL(f *testing.F) {
	hdr := "{\"format\":\"srcsim-trace\",\"version\":1}\n"
	f.Add(hdr)
	f.Add(hdr + "{\"ts_ns\":0,\"op\":\"R\",\"lba\":4096,\"size\":8192,\"stream\":\"vol0\"}\n")
	f.Add(hdr + "{\"ts_ns\":1350,\"op\":\"W\",\"lba\":0,\"size\":4096,\"initiator\":1,\"target\":1}\n")
	f.Add(hdr + "{\"ts_ns\":-1,\"op\":\"R\",\"lba\":0,\"size\":1}\n")
	f.Add(hdr + "{\"ts_ns\":0,\"op\":\"X\",\"lba\":0,\"size\":1}\n")
	f.Add(hdr + "{\"ts_ns\":0,\"op\":\"R\",\"lba\":0,\"size\":0}\n")
	f.Add(hdr + "{\"ts_ns\":0,\"op\":\"R\",\"lba\":0,\"size\":1,\"bogus\":2}\n")
	f.Add("{\"format\":\"srcsim-trace\",\"version\":99}\n")
	f.Add("{\"format\":\"other\",\"version\":1}\n")
	f.Add("")
	f.Add("not json at all\n")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadJSONL(strings.NewReader(data))
		if err != nil {
			return
		}
		for i, r := range tr.Requests {
			if r.Size <= 0 {
				t.Fatalf("request %d accepted with size %d", i, r.Size)
			}
			if r.Arrival < 0 {
				t.Fatalf("request %d accepted with negative arrival %v", i, r.Arrival)
			}
			if r.ID != uint64(i) {
				t.Fatalf("request %d has ID %d", i, r.ID)
			}
		}
		var buf strings.Builder
		if err := WriteJSONL(&buf, tr); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		rt, err := ReadJSONL(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(rt.Requests) != len(tr.Requests) {
			t.Fatalf("round trip lost requests: %d -> %d", len(tr.Requests), len(rt.Requests))
		}
		for i := range tr.Requests {
			if rt.Requests[i] != tr.Requests[i] {
				t.Fatalf("round trip changed request %d: %+v -> %+v", i, tr.Requests[i], rt.Requests[i])
			}
		}
	})
}

// FuzzReadMSR: the MSR reader must never panic, and every accepted
// trace must be sorted with non-negative arrivals and positive sizes.
func FuzzReadMSR(f *testing.F) {
	f.Add("128166372003061629,src1,0,Read,0,4096,100\n")
	f.Add("2000,h,0,Read,4096,8192,1\n1000,h,0,Write,0,512,1\n")
	f.Add("# comment\n\n1000,h,0,write,0,512,1\n")
	f.Add("-5,h,0,Read,0,4096,1\n")
	f.Add("1000,h,0,Flush,0,4096,1\n")
	f.Add("1000,h,0,Read,0,-4,1\n")
	f.Add("9223372036854775807,h,0,Read,0,4096,1\n0,h,0,Read,0,4096,1\n")
	f.Add("not,enough\n")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadMSR(strings.NewReader(data))
		if err != nil {
			return
		}
		var prev int64 = -1
		for i, r := range tr.Requests {
			if r.Size <= 0 {
				t.Fatalf("request %d accepted with size %d", i, r.Size)
			}
			if r.Arrival < 0 {
				t.Fatalf("request %d accepted with negative arrival %v", i, r.Arrival)
			}
			if int64(r.Arrival) < prev {
				t.Fatalf("request %d out of order: %v after %v", i, r.Arrival, prev)
			}
			prev = int64(r.Arrival)
			if r.ID != uint64(i) {
				t.Fatalf("request %d has ID %d", i, r.ID)
			}
		}
	})
}
