package trace

import (
	"strings"
	"testing"

	"srcsim/internal/sim"
)

const msrSample = `# MSR Cambridge format sample
128166372003061629,hm,0,Read,383496192,32768,413
128166372003061829,hm,0,Write,383528960,8192,512
128166372003062129,hm,0,read,1024,4096,100
`

func TestReadMSR(t *testing.T) {
	tr, err := ReadMSR(strings.NewReader(msrSample))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("len %d", tr.Len())
	}
	first := tr.Requests[0]
	if first.Arrival != 0 {
		t.Fatalf("first arrival %v, want rebased 0", first.Arrival)
	}
	if first.Op != Read || first.LBA != 383496192 || first.Size != 32768 {
		t.Fatalf("first request %+v", first)
	}
	// 200 ticks * 100ns = 20µs gap.
	if tr.Requests[1].Arrival != 20*sim.Microsecond {
		t.Fatalf("second arrival %v, want 20µs", tr.Requests[1].Arrival)
	}
	if tr.Requests[1].Op != Write {
		t.Fatal("second op")
	}
	if tr.Requests[2].Op != Read {
		t.Fatal("lowercase type not accepted")
	}
	// IDs sequential after sort.
	for i, r := range tr.Requests {
		if r.ID != uint64(i) {
			t.Fatalf("ID %d at index %d", r.ID, i)
		}
	}
}

func TestReadMSRRejectsCorrupt(t *testing.T) {
	cases := map[string]string{
		"short line": "123,hm,0,Read,100\n",
		"bad ts":     "zz,hm,0,Read,100,4096,1\n",
		"bad type":   "123,hm,0,Trim,100,4096,1\n",
		"bad size":   "123,hm,0,Read,100,-5,1\n",
		"bad offset": "123,hm,0,Read,xx,4096,1\n",
	}
	for name, in := range cases {
		if _, err := ReadMSR(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadMSRSortsOutOfOrder(t *testing.T) {
	in := "2000,hm,0,Read,0,4096,1\n1000,hm,0,Write,8192,4096,1\n"
	tr, err := ReadMSR(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Requests[0].Op != Write || tr.Requests[0].Arrival >= tr.Requests[1].Arrival {
		t.Fatalf("not time-sorted: %+v", tr.Requests)
	}
}

func TestReadMSREmpty(t *testing.T) {
	tr, err := ReadMSR(strings.NewReader("# only comments\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatalf("len %d", tr.Len())
	}
}
