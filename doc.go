// Package srcsim is a from-scratch reproduction of "SRC: Mitigate I/O
// Throughput Degradation in Network Congestion Control of Disaggregated
// Storage Systems" (Jia et al., 2023).
//
// The repository contains a deterministic discrete-event simulation stack
// for NVMe-over-RDMA disaggregated storage: a packet-level network
// simulator with DCQCN congestion control (internal/netsim,
// internal/dcqcn), an MQSim-like multi-queue SSD simulator (internal/ssd,
// internal/nvme), the NVMe-oF initiator/target glue (internal/nvmeof), a
// small statistical machine-learning library (internal/ml), and the
// paper's contribution — storage-side rate control — in internal/core.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package srcsim
