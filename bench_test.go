// Benchmarks regenerating each table and figure of the paper at reduced
// scale: one benchmark per experiment, so `go test -bench=. -benchmem`
// exercises the full reproduction pipeline. EXPERIMENTS.md records the
// full-scale paper-versus-measured numbers; these benchmarks measure the
// cost of regenerating them.
package srcsim_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"srcsim/internal/core"
	"srcsim/internal/devrun"
	"srcsim/internal/harness"
	"srcsim/internal/ssd"
)

// Shared trained models: training is part of the pipeline but would
// drown per-experiment timings if repeated every iteration, so each
// benchmark that needs a TPM amortises it through a sync.Once. The
// first failure is wrapped with which model failed and cached; later
// benchmarks report that cached, contextualised error rather than
// re-running the training.
var (
	tpmOnce sync.Once
	tpmCong *core.TPM
	tpmFig9 *core.TPM
	tpmErr  error
)

func benchTPMs(b *testing.B) (*core.TPM, *core.TPM) {
	b.Helper()
	tpmOnce.Do(func() {
		// Behind the shared artifact cache (same keys as the harness test
		// suite's models), so repeated benchmark runs skip re-training;
		// SRCSIM_TPM_CACHE=off forces a cold run.
		c := devrun.TPMCacheFromEnv()
		if tpmCong, _, tpmErr = harness.TrainCongestionTPMCached(c, 1000, 42); tpmErr != nil {
			tpmErr = fmt.Errorf("training shared congestion TPM: %w", tpmErr)
			return
		}
		if tpmFig9, _, tpmErr = devrun.TrainTPMCached(c, harness.Fig9Config(), 1000, 43); tpmErr != nil {
			tpmErr = fmt.Errorf("training shared Fig. 9 TPM: %w", tpmErr)
		}
	})
	if tpmErr != nil {
		b.Fatalf("shared TPM unavailable: %v", tpmErr)
	}
	return tpmCong, tpmFig9
}

// heapHW tracks the peak live-heap bytes seen across benchmark
// iterations; sampling pauses the timer so ns/op stays clean. Reported
// as the heap-B metric and folded into BENCH_*.json by scripts/bench.sh.
type heapHW uint64

func (h *heapHW) sample(b *testing.B) {
	b.StopTimer()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > uint64(*h) {
		*h = heapHW(ms.HeapAlloc)
	}
	b.StartTimer()
}

func (h heapHW) report(b *testing.B) {
	b.ReportMetric(float64(h), "heap-B")
}

// BenchmarkFig2Motivation regenerates the Fig. 2 analytic motivation
// table (9 -> 6 -> 9 IOPS across the three scenarios).
func BenchmarkFig2Motivation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := harness.Fig2Motivation(harness.DefaultFig2Params())
		if rows[2].Aggregate != rows[0].Aggregate {
			b.Fatal("SRC must preserve the aggregate")
		}
	}
}

// BenchmarkFig5WeightSweep regenerates a reduced Fig. 5 grid (all 16
// workload cells at w in {1, 4, 8}) on SSD-A.
func BenchmarkFig5WeightSweep(b *testing.B) {
	b.ReportAllocs()
	var hw heapHW
	for i := 0; i < b.N; i++ {
		cells, err := harness.Fig5WeightSweep(ssd.ConfigA(), []int{1, 4, 8}, 1200, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 48 {
			b.Fatalf("cells %d", len(cells))
		}
		hw.sample(b)
	}
	hw.report(b)
}

// BenchmarkTableIRegressors regenerates the five-regressor accuracy
// comparison on SSD-A micro samples.
func BenchmarkTableIRegressors(b *testing.B) {
	b.ReportAllocs()
	var hw heapHW
	for i := 0; i < b.N; i++ {
		rows, err := harness.TableI(ssd.ConfigA(), 1000, 2)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatalf("rows %d", len(rows))
		}
		hw.sample(b)
	}
	hw.report(b)
}

// BenchmarkTableIIICrossValidation regenerates the grouped
// cross-validation over the four synthetic workload classes.
func BenchmarkTableIIICrossValidation(b *testing.B) {
	b.ReportAllocs()
	var hw heapHW
	for i := 0; i < b.N; i++ {
		rows, err := harness.TableIII(ssd.ConfigA(), 800, 16, 3)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("rows %d", len(rows))
		}
		hw.sample(b)
	}
	hw.report(b)
}

// BenchmarkFig7Throughput regenerates the Sec. IV-D congestion A/B run
// (DCQCN-only vs DCQCN-SRC on the VDI-like workload).
func BenchmarkFig7Throughput(b *testing.B) {
	tpm, _ := benchTPMs(b)
	b.ReportAllocs()
	b.ResetTimer()
	var hw heapHW
	for i := 0; i < b.N; i++ {
		res, err := harness.Fig7Throughput(tpm, 800, uint64(7+i))
		if err != nil {
			b.Fatal(err)
		}
		if res.SRC.Completed != res.SRC.Submitted {
			b.Fatal("incomplete run")
		}
		hw.sample(b)
	}
	hw.report(b)
}

// BenchmarkFig8PauseNumber measures the same paired run but validates
// the pause-number series (Fig. 8's metric) is populated.
func BenchmarkFig8PauseNumber(b *testing.B) {
	tpm, _ := benchTPMs(b)
	b.ReportAllocs()
	b.ResetTimer()
	var hw heapHW
	for i := 0; i < b.N; i++ {
		res, err := harness.Fig7Throughput(tpm, 800, uint64(17+i))
		if err != nil {
			b.Fatal(err)
		}
		var total float64
		for _, p := range res.Baseline.Pauses {
			total += p
		}
		if total == 0 {
			b.Fatal("no pauses recorded")
		}
		hw.sample(b)
	}
	hw.report(b)
}

// BenchmarkFig9DynamicControl regenerates the dynamic-adjustment
// experiment: four synthetic congestion events on the SSD-B array.
func BenchmarkFig9DynamicControl(b *testing.B) {
	_, tpm := benchTPMs(b)
	b.ReportAllocs()
	b.ResetTimer()
	var hw heapHW
	for i := 0; i < b.N; i++ {
		res, err := harness.Fig9DynamicControl(tpm, nil, 0, uint64(5+i))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Events) != 4 {
			b.Fatal("event count")
		}
		hw.sample(b)
	}
	hw.report(b)
}

// BenchmarkFig10Intensity regenerates the light/moderate/heavy
// sensitivity comparison.
func BenchmarkFig10Intensity(b *testing.B) {
	tpm, _ := benchTPMs(b)
	b.ReportAllocs()
	b.ResetTimer()
	var hw heapHW
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig10Intensity(tpm, 0.04, uint64(13+i))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("row count")
		}
		hw.sample(b)
	}
	hw.report(b)
}

// BenchmarkTableIVIncast regenerates the in-cast ratio analysis
// (2:1, 3:1, 4:1, 4:4).
func BenchmarkTableIVIncast(b *testing.B) {
	tpm, _ := benchTPMs(b)
	b.ReportAllocs()
	b.ResetTimer()
	var hw heapHW
	for i := 0; i < b.N; i++ {
		rows, err := harness.TableIV(tpm, nil, 0.05, uint64(11+i))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("row count")
		}
		hw.sample(b)
	}
	hw.report(b)
}

// BenchmarkTPMTraining measures the full training-sample collection and
// random-forest fit for the congestion TPM.
func BenchmarkTPMTraining(b *testing.B) {
	b.ReportAllocs()
	var hw heapHW
	for i := 0; i < b.N; i++ {
		tpm, _, err := harness.TrainCongestionTPM(800, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if !tpm.Trained() {
			b.Fatal("untrained")
		}
		hw.sample(b)
	}
	hw.report(b)
}
