// vdi_congestion reproduces the paper's Sec. IV-D scenario end to end
// and dumps the runtime timelines: per-millisecond read/write throughput
// (Fig. 7) and pause numbers (Fig. 8) under DCQCN-only and DCQCN-SRC,
// plus the SRC weight-adjustment log.
//
// Run with: go run ./examples/vdi_congestion
package main

import (
	"fmt"
	"log"
	"os"

	"srcsim/internal/harness"
)

func main() {
	log.SetFlags(0)

	fmt.Fprintln(os.Stderr, "training TPM...")
	tpm, _, err := harness.TrainCongestionTPM(1500, 42)
	if err != nil {
		log.Fatal(err)
	}

	res, err := harness.Fig7Throughput(tpm, 2000, 7)
	if err != nil {
		log.Fatal(err)
	}

	harness.FprintFig7(os.Stdout, res)
	fmt.Println()
	harness.FprintFig8(os.Stdout, res)

	fmt.Println("\nSRC weight adjustments (first 12):")
	for i, e := range res.SRC.WeightEvents {
		if i == 12 {
			fmt.Printf("  ... %d more\n", len(res.SRC.WeightEvents)-12)
			break
		}
		fmt.Printf("  t=%-10v demanded %5.2f Gbps -> w=%d (predicted read %.2f Gbps)\n",
			e.At, e.DemandedBps/1e9, e.WeightRatio, e.PredictedRBp/1e9)
	}
}
