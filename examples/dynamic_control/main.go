// dynamic_control demonstrates the SRC control loop (Alg. 1) in
// isolation, using the core API directly: a workload monitor, a trained
// TPM, and a controller driving an SSQ's weights from hand-written
// congestion events — no network simulation involved.
//
// Run with: go run ./examples/dynamic_control
package main

import (
	"fmt"
	"log"

	"srcsim/internal/core"
	"srcsim/internal/devrun"
	"srcsim/internal/harness"
	"srcsim/internal/nvme"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

func main() {
	log.SetFlags(0)

	// Train a TPM for the Fig. 9 device (SSD-B variant).
	fmt.Println("training TPM for the SSD-B array...")
	tpm, _, err := devrun.TrainTPM(harness.Fig9Config(), 1500, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Build the control loop around a separate submission queue.
	ssq := nvme.NewSSQ(1, 1)
	ctl := core.NewController(core.ControllerConfig{
		Window: 10 * sim.Millisecond,
		Tau:    0.10,
		MaxW:   32,
	}, tpm, ssq)

	// Feed the workload monitor a steady stream of 32 KB requests, half
	// reads, half writes, 8 µs apart (what the monitor would observe on
	// a busy target).
	for i := 0; i < 5000; i++ {
		op := trace.Read
		if i%2 == 1 {
			op = trace.Write
		}
		ctl.Monitor.Record(trace.Request{Op: op, Size: 32 << 10, LBA: uint64(i) << 15},
			sim.Time(i)*8*sim.Microsecond)
	}
	now := sim.Time(5000) * 8 * sim.Microsecond

	// Hand-written congestion events: the network demands progressively
	// lower read rates (pause events), then releases (retrieval events).
	fmt.Println("\ncongestion events -> chosen weight ratios:")
	for i, demandGbps := range []float64{8, 6, 4, 2, 4, 8, 12} {
		at := now + sim.Time(i+1)*5*sim.Millisecond
		ctl.OnRateEvent(at, demandGbps*1e9)
		readW, writeW := ssq.Weights()
		fmt.Printf("  demand %5.1f Gbps -> SSQ weights read:%d write:%d (w=%.0f)\n",
			demandGbps, readW, writeW, ssq.WeightRatio())
	}

	fmt.Println("\nadjustment log:")
	for _, e := range ctl.Events {
		fmt.Printf("  t=%-8v demanded %5.2f Gbps  w=%-2d  predicted read %.2f Gbps\n",
			e.At, e.DemandedBps/1e9, e.WeightRatio, e.PredictedRBp/1e9)
	}
}
