// Quickstart: build a minimal disaggregated storage cluster (1 initiator,
// 2 SSD-A targets over a 10 Gbps rack), train the throughput prediction
// model, and compare DCQCN-only against DCQCN-SRC on a read-congested
// workload — the paper's headline experiment in ~60 lines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"srcsim/internal/cluster"
	"srcsim/internal/harness"
)

func main() {
	log.SetFlags(0)

	// 1. Train the TPM on the target device (Sec. III-B). This sweeps a
	//    grid of micro workloads across weight ratios and fits the
	//    paper's random-forest model.
	fmt.Println("training throughput prediction model...")
	tpm, samples, err := harness.TrainCongestionTPM(1500, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d samples\n\n", len(samples))

	// 2. Generate a read-congesting workload: the VDI-like trace of
	//    Sec. IV-D (44 KB reads at 2x the rate of 23 KB writes, bursty).
	tr, err := harness.VDITrace(7, 1500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d requests over %v\n\n", tr.Len(), tr.Duration())

	// 3. Run the same trace under both modes on identical clusters.
	baseline, src, err := cluster.CompareModes(harness.CongestionSpec(), tpm, tr, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Compare: SRC should hold reads near the network's demanded rate
	//    while boosting writes with the freed device bandwidth.
	for _, r := range []*cluster.Result{baseline, src} {
		fmt.Printf("%-11s read %5.2f Gbps | write %5.2f Gbps | aggregated %5.2f Gbps | pauses %d\n",
			r.Mode, r.MeanReadGbps, r.MeanWriteGbps, r.AggregatedGbps, r.TotalCNPs)
	}
	gain := src.AggregatedGbps/baseline.AggregatedGbps - 1
	fmt.Printf("\nSRC aggregated-throughput improvement: %+.0f%%\n", gain*100)
}
