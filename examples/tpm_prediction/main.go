// tpm_prediction shows the throughput prediction model on its own:
// collect training samples from the SSD simulator, fit the paper's five
// regressors, compare their accuracy (Table I style), query the chosen
// random forest across weight ratios, and report feature importances.
//
// Run with: go run ./examples/tpm_prediction
package main

import (
	"fmt"
	"log"

	"srcsim/internal/core"
	"srcsim/internal/devrun"
	"srcsim/internal/ml"
	"srcsim/internal/sim"
	"srcsim/internal/ssd"
)

func main() {
	log.SetFlags(0)

	cfg := ssd.ConfigA()
	fmt.Printf("collecting training samples on %s...\n", cfg.Name)
	samples, err := devrun.CollectSamples(cfg,
		devrun.DefaultGrid(devrun.MinTrainCount(cfg, 0), 1),
		[]int{1, 2, 3, 4, 5, 6, 8}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d samples\n\n", len(samples))

	// Compare estimators on a held-out split.
	rng := sim.NewRNG(99)
	trainIdx, testIdx := ml.TrainTestSplit(len(samples), 0.6, rng)
	train := make([]core.Sample, len(trainIdx))
	test := make([]core.Sample, len(testIdx))
	for i, ix := range trainIdx {
		train[i] = samples[ix]
	}
	for i, ix := range testIdx {
		test[i] = samples[ix]
	}

	fmt.Println("estimator accuracy (R², 60/40 split):")
	for _, factory := range []func() ml.Regressor{
		func() ml.Regressor { return &ml.LinearRegression{} },
		func() ml.Regressor { return &ml.PolynomialRegression{} },
		func() ml.Regressor { return &ml.KNNRegressor{K: 5} },
		func() ml.Regressor { return &ml.DecisionTreeRegressor{} },
		func() ml.Regressor { return &ml.RandomForestRegressor{Trees: 100, Seed: 1} },
	} {
		tpm := &core.TPM{NewRegressor: factory}
		if err := tpm.Train(train); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-26s %.3f\n", factory().Name(), tpm.Accuracy(test))
	}

	// The production model: random forest, queried across weight ratios
	// for one heavy workload.
	tpm := core.NewTPM()
	if err := tpm.Train(samples); err != nil {
		log.Fatal(err)
	}
	var heavy core.Sample
	for _, s := range samples {
		if s.W == 1 && s.TputR > heavy.TputR {
			heavy = s
		}
	}
	fmt.Println("\npredicted throughput vs weight ratio (heaviest workload):")
	for w := 1; w <= 8; w++ {
		r, wr := tpm.Predict(heavy.Ch, float64(w))
		fmt.Printf("  w=%d: read %5.2f Gbps, write %5.2f Gbps\n", w, r/1e9, wr/1e9)
	}

	names, weights, ok := tpm.FeatureImportances()
	if ok {
		fmt.Println("\nfeature importances:")
		for _, i := range ml.RankFeatures(weights) {
			if weights[i] < 0.01 {
				continue
			}
			fmt.Printf("  %-28s %.3f\n", names[i], weights[i])
		}
	}
}
