// clos_scale runs the paper's full testbed topology (Sec. IV-A): a Clos
// fabric with 4 pods × (2 leaf + 4 ToR switches) and 256 hosts, 128
// initiators and 128 targets, many concurrent storage pairs — showing
// the simulator at the paper's stated scale rather than the small-scale
// experiment subsets.
//
// Run with: go run ./examples/clos_scale
package main

import (
	"fmt"
	"log"
	"time"

	"srcsim/internal/netsim"
	"srcsim/internal/nvme"
	"srcsim/internal/nvmeof"
	"srcsim/internal/sim"
	"srcsim/internal/ssd"
	"srcsim/internal/trace"
	"srcsim/internal/workload"
)

func main() {
	log.SetFlags(0)
	start := time.Now()

	eng := sim.NewEngine()
	net, err := netsim.NewNetwork(eng, netsim.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	// The paper's fabric: 40 Gbps links, 1 µs delay, 256 hosts.
	hosts := netsim.BuildClos(net, netsim.ClosSpec{})
	fmt.Printf("built Clos fabric: %d hosts, %d nodes, in %v\n",
		len(hosts), len(net.Nodes()), time.Since(start))

	// Half initiators, half targets (paper Sec. IV-A). To keep the demo
	// fast we activate 16 of the 128 pairs, spread across pods.
	const activePairs = 16
	inis := make([]*nvmeof.Initiator, 0, activePairs)
	tgts := make([]*nvmeof.Target, 0, activePairs)
	for p := 0; p < activePairs; p++ {
		iniHost := hosts[p*8]              // spread over ToRs
		tgtHost := hosts[len(hosts)-1-p*8] // far side of the fabric
		cfg := ssd.ConfigA()               // full MQSim-default geometry
		arb := nvme.NewSSQ(1, 1)
		dev, err := ssd.New(eng, cfg, arb)
		if err != nil {
			log.Fatal(err)
		}
		tgts = append(tgts, nvmeof.NewTarget(net, tgtHost, []nvmeof.Unit{{Dev: dev, Arb: arb}}, 0))
		inis = append(inis, nvmeof.NewInitiator(net, eng, iniHost))
	}

	// Each pair runs a VDI-like stream.
	completed := 0
	total := 0
	for p := 0; p < activePairs; p++ {
		p := p
		inis[p].OnComplete = func(trace.Request, bool, sim.Time) { completed++ }
		tr, err := workload.VDILike(uint64(100+p), 400)
		if err != nil {
			log.Fatal(err)
		}
		total += tr.Len()
		for _, r := range tr.Requests {
			r := r
			eng.Schedule(r.Arrival, func() { inis[p].Submit(r, tgts[p].Node) })
		}
	}

	simStart := time.Now()
	eng.Run(2 * sim.Second)
	fmt.Printf("simulated %v of fabric time (%d events) in %v wall time\n",
		eng.Now(), eng.Processed, time.Since(simStart))
	fmt.Printf("requests completed: %d/%d\n", completed, total)
	fmt.Printf("fabric counters: ECN marks %d, CNPs %d, PFC pauses %d\n",
		net.ECNMarks, net.CNPsSent, net.PFCPauses)

	var reads, writes uint64
	for _, t := range tgts {
		reads += t.ReadsServed
		writes += t.WritesServed
	}
	fmt.Printf("targets served: %d reads, %d writes\n", reads, writes)
}
