// Command dynctl regenerates Fig. 9: SRC's dynamic weight adjustment
// under a schedule of synthetic congestion events, reporting the runtime
// read/write throughput and the per-event convergence delay.
//
// Usage:
//
//	dynctl [-train 2000] [-seed 5]
//	dynctl -events 60:6,100:3,140:6,180:10   (ms:Gbps pairs)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"srcsim/internal/devrun"
	"srcsim/internal/harness"
	"srcsim/internal/sim"
)

func parseEvents(s string) ([]harness.RateEvent, error) {
	if s == "" {
		return nil, nil
	}
	var out []harness.RateEvent
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, ":", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad event %q (want ms:Gbps)", part)
		}
		ms, err := strconv.ParseFloat(kv[0], 64)
		if err != nil {
			return nil, fmt.Errorf("bad event time %q: %v", kv[0], err)
		}
		gbps, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad event rate %q: %v", kv[1], err)
		}
		out = append(out, harness.RateEvent{
			At:         sim.Time(ms * float64(sim.Millisecond)),
			DemandGbps: gbps,
		})
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dynctl: ")

	trainCount := flag.Int("train", 2000, "per-direction request count for TPM training runs")
	seed := flag.Uint64("seed", 5, "workload seed")
	eventsFlag := flag.String("events", "", "comma-separated ms:Gbps congestion events (default: the paper's 60:6,100:3,140:6,180:10)")
	flag.Parse()

	events, err := parseEvents(*eventsFlag)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	fmt.Fprintln(os.Stderr, "training TPM (Fig. 9 SSD-B variant)...")
	tpm, samples, err := devrun.TrainTPM(harness.Fig9Config(), *trainCount, *seed^0xd1c7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "trained on %d samples in %v\n", len(samples), time.Since(start))

	res, err := harness.Fig9DynamicControl(tpm, events, 0, *seed)
	if err != nil {
		log.Fatal(err)
	}
	harness.FprintFig9(os.Stdout, res)
}
