package main

import (
	"testing"

	"srcsim/internal/sim"
)

func TestParseEvents(t *testing.T) {
	evs, err := parseEvents("60:6,100:3.5,180:10")
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("parsed %d events", len(evs))
	}
	if evs[0].At != 60*sim.Millisecond || evs[0].DemandGbps != 6 {
		t.Fatalf("first event %+v", evs[0])
	}
	if evs[1].At != 100*sim.Millisecond || evs[1].DemandGbps != 3.5 {
		t.Fatalf("second event %+v", evs[1])
	}
}

func TestParseEventsEmpty(t *testing.T) {
	evs, err := parseEvents("")
	if err != nil || evs != nil {
		t.Fatalf("empty spec: %v %v", evs, err)
	}
}

func TestParseEventsErrors(t *testing.T) {
	for _, bad := range []string{"60", "x:6", "60:y", "60:6,bad"} {
		if _, err := parseEvents(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}
