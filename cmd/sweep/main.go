// Command sweep runs experiment campaigns: a JSON spec names registered
// experiments with parameter grids, and the orchestrator expands it into
// jobs, runs them on a worker pool (parallel across jobs; every
// simulation stays single-threaded and deterministic), and writes
// per-job artifacts plus a byte-stable aggregate report.
//
// Usage:
//
//	sweep -campaign paper.json -out out/        run a campaign
//	sweep -campaign paper.json -out out/ -resume   continue after a crash/kill
//	sweep -list                                 enumerate registered experiments
//
// A campaign spec looks like:
//
//	{
//	  "name": "paper",
//	  "seed": 7,
//	  "experiments": [
//	    {"experiment": "fig2"},
//	    {"experiment": "fig7", "grid": {"cc": ["dcqcn", "timely"]}},
//	    {"experiment": "fig10", "params": {"seconds": "0.06"}}
//	  ]
//	}
//
// Outputs under -out:
//
//	manifest.json   crash-safe checkpoint, rewritten after every job
//	jobs/<id>.json  one artifact per finished job
//	report.txt      every rendered figure/table, in job order
//	aggregate.json  machine-readable campaign record
//	metrics.json    merged cross-job metrics snapshot (when present)
//	progress.jsonl  job-transition log (one JSON line per start/done/
//	                failed/resumed event, appended atomically); carries
//	                wall times and an ETA, so it is run-local and
//	                excluded from byte-determinism comparisons
//
// -serve :8080 additionally exposes the campaign live over HTTP:
// /progress (same data as the latest progress.jsonl line) and /metrics
// (the merged snapshot so far, Prometheus text exposition).
//
// Finished jobs and trained TPMs are reused through the
// content-addressed cache (-cache, default <out>/cache); re-running an
// unchanged campaign is all cache hits and reproduces the aggregate
// byte-for-byte. SIGINT/SIGTERM or -max-wall stop gracefully: running
// simulations drain, finished work is kept, and -resume completes the
// rest with a byte-identical final report.
//
// Exit codes:
//
//	0  campaign completed, all jobs done
//	1  configuration or I/O error, or at least one job failed
//	3  campaign truncated (signal or wall budget); resume to finish
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"srcsim/internal/guard"
	"srcsim/internal/harness"
	"srcsim/internal/obs/live"
	"srcsim/internal/sweep"
	"srcsim/internal/sweep/cache"
)

const (
	exitOK        = 0
	exitError     = 1
	exitTruncated = 3
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	os.Exit(run())
}

func run() int {
	campaignPath := flag.String("campaign", "", "campaign spec file (JSON)")
	out := flag.String("out", "", "output directory (required)")
	cacheDir := flag.String("cache", "", "content-addressed artifact cache directory (default <out>/cache; \"off\" disables)")
	workers := flag.Int("workers", 0, "max parallel jobs (0 = campaign spec, then GOMAXPROCS)")
	resume := flag.Bool("resume", false, "continue a previous run in -out: skip jobs whose artifacts are already on disk")
	list := flag.Bool("list", false, "list registered experiments with their parameters and exit")
	maxWall := flag.Duration("max-wall", 0, "stop the campaign gracefully after this much wall-clock time (0 = unlimited)")
	serveAddr := flag.String("serve", "", "serve the live inspector (/metrics merged Prometheus text, /progress JSON with ETA) on this address during the campaign, e.g. :8080")
	serveGrace := flag.Duration("serve-grace", 0, "keep the live inspector up this long (wall time) after the campaign finishes before exiting")
	flag.Parse()

	if *list {
		harness.FprintExperiments(os.Stdout)
		return exitOK
	}
	if *campaignPath == "" || *out == "" {
		log.Print("need -campaign and -out (or -list)")
		return exitError
	}

	spec, err := sweep.LoadCampaign(*campaignPath)
	if err != nil {
		log.Print(err)
		return exitError
	}

	// Graceful cancellation: SIGINT/SIGTERM and -max-wall share one
	// Stopper. Running jobs drain at the next event boundary and stay
	// pending in the manifest; a second signal kills the process.
	stopper := guard.NewStopper()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		signal.Stop(sigc)
		fmt.Fprintf(os.Stderr, "sweep: %v: stopping campaign (again to kill)\n", s)
		stopper.Stop(fmt.Sprintf("signal: %v", s))
	}()
	if *maxWall > 0 {
		timer := time.AfterFunc(*maxWall, func() {
			stopper.Stop(fmt.Sprintf("wall budget %v exceeded", *maxWall))
		})
		defer timer.Stop()
	}

	dir := *cacheDir
	switch dir {
	case "":
		dir = filepath.Join(*out, "cache")
	case "off", "0":
		dir = ""
	}
	var board *live.Board
	if *serveAddr != "" {
		board = live.NewBoard()
		srv, err := live.Serve(*serveAddr, board)
		if err != nil {
			log.Print(err)
			return exitError
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sweep: live inspector on http://%s (/metrics, /progress)\n", srv.Addr())
		if *serveGrace > 0 {
			// Hold the inspector up after the campaign so scrapers racing
			// a short run still see the final state.
			defer time.Sleep(*serveGrace)
		}
	}
	runner := &sweep.Runner{
		Out:     *out,
		Cache:   cache.New(dir),
		Workers: *workers,
		Stop:    stopper,
		Resume:  *resume,
		Log:     os.Stderr,
		Board:   board,
	}
	rep, err := runner.Run(spec)
	if err != nil {
		log.Print(err)
		return exitError
	}

	fmt.Fprintf(os.Stderr, "sweep: %s: %d/%d done (failed %d, resumed %d) | cache hits: %d/%d\n",
		rep.Campaign, rep.Done+rep.Resumed, rep.Total, rep.Failed, rep.Resumed, rep.CacheHits, rep.Executed)
	fmt.Fprintf(os.Stderr, "sweep: outputs in %s (report.txt, aggregate.json, manifest.json)\n", rep.OutDir)

	if rep.Truncated {
		log.Printf("campaign truncated: %s (use -resume to finish)", stopper.Reason())
		return exitTruncated
	}
	if rep.Failed > 0 {
		log.Printf("%d job(s) failed; see manifest.json", rep.Failed)
		return exitError
	}
	return exitOK
}
