// Command tracegen generates and inspects I/O workload traces: the
// paper's micro traces (exponential inter-arrival and size), synthetic
// MMPP traces fit to target statistics, and the VDI/CBS-like presets.
// Traces are written as CSV (see internal/trace) for replay or external
// analysis; -inspect prints the feature statistics of an existing trace.
//
// Usage:
//
//	tracegen -kind micro -count 5000 -ia 10us -size 32768 -o trace.csv
//	tracegen -kind synthetic -ia-scv 4 -acf 0.2 -size-scv 2 -o bursty.csv
//	tracegen -kind vdi -count 5000 -o vdi.csv
//	tracegen -inspect trace.csv
//	tracegen -inspect msr_trace.csv -format msr
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"srcsim/internal/sim"
	"srcsim/internal/trace"
	"srcsim/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	kind := flag.String("kind", "micro", "micro | synthetic | vdi | cbs")
	count := flag.Int("count", 5000, "requests per direction")
	ia := flag.Duration("ia", 10*time.Microsecond, "mean inter-arrival per direction")
	size := flag.Int("size", 32<<10, "mean request size in bytes")
	iaSCV := flag.Float64("ia-scv", 4.0, "inter-arrival SCV (synthetic)")
	sizeSCV := flag.Float64("size-scv", 2.0, "request-size SCV (synthetic)")
	acf := flag.Float64("acf", 0.2, "inter-arrival lag-1 autocorrelation (synthetic)")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("o", "", "output CSV path (default stdout)")
	inspect := flag.String("inspect", "", "print statistics of an existing trace file and exit")
	format := flag.String("format", "csv", "format of the -inspect file: csv (tracegen) | msr (MSR Cambridge / SNIA)")
	flag.Parse()

	if *inspect != "" {
		f, err := os.Open(*inspect)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		var tr *trace.Trace
		switch *format {
		case "csv":
			tr, err = trace.ReadCSV(f)
		case "msr":
			tr, err = trace.ReadMSR(f)
		default:
			log.Fatalf("unknown format %q", *format)
		}
		if err != nil {
			log.Fatal(err)
		}
		s := trace.Extract(tr)
		fmt.Printf("%s\n", s)
		fmt.Printf("read:  n=%d meanSize=%.0fB sizeSCV=%.2f meanIA=%.1fus iaSCV=%.2f acf1=%.2f flow=%.2f MB/s\n",
			s.Read.Count, s.Read.MeanSize, s.Read.SizeSCV,
			s.Read.MeanInterArrival/1000, s.Read.InterArrivalSCV, s.Read.InterArrivalACF1,
			s.Read.FlowSpeed/1e6)
		fmt.Printf("write: n=%d meanSize=%.0fB sizeSCV=%.2f meanIA=%.1fus iaSCV=%.2f acf1=%.2f flow=%.2f MB/s\n",
			s.Write.Count, s.Write.MeanSize, s.Write.SizeSCV,
			s.Write.MeanInterArrival/1000, s.Write.InterArrivalSCV, s.Write.InterArrivalACF1,
			s.Write.FlowSpeed/1e6)
		return
	}

	var tr *trace.Trace
	var err error
	meanIA := sim.Time(ia.Nanoseconds())
	switch *kind {
	case "micro":
		tr = workload.Micro(workload.MicroConfig{
			Seed:      *seed,
			ReadCount: *count, WriteCount: *count,
			ReadInterArrival: meanIA, WriteInterArrival: meanIA,
			ReadMeanSize: *size, WriteMeanSize: *size,
		})
	case "synthetic":
		tr, err = workload.Synthetic(workload.SyntheticConfig{
			Seed:      *seed,
			ReadCount: *count, WriteCount: *count,
			ReadInterArrival: meanIA, WriteInterArrival: meanIA,
			ReadInterArrivalSCV: *iaSCV, WriteInterArrivalSCV: *iaSCV,
			ReadACF1: *acf, WriteACF1: *acf,
			ReadMeanSize: *size, WriteMeanSize: *size,
			ReadSizeSCV: *sizeSCV, WriteSizeSCV: *sizeSCV,
		})
	case "vdi":
		tr, err = workload.VDILike(*seed, *count)
	case "cbs":
		tr, err = workload.CBSLike(*seed, *count)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := trace.WriteCSV(w, tr); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d requests (%s) to %s\n", tr.Len(), tr.Duration(), *out)
	}
}
