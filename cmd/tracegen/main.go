// Command tracegen generates and inspects I/O workload traces: the
// paper's micro traces (exponential inter-arrival and size), synthetic
// MMPP traces fit to target statistics, and the VDI/CBS-like presets.
// Traces are written as CSV or as the open JSONL trace format (see
// internal/trace) for replay or external analysis; -inspect prints the
// feature statistics of an existing trace.
//
// Usage:
//
//	tracegen -kind micro -count 5000 -ia 10us -size 32768 -o trace.csv
//	tracegen -kind synthetic -ia-scv 4 -acf 0.2 -size-scv 2 -o bursty.csv
//	tracegen -kind vdi -count 5000 -format jsonl -o vdi.jsonl
//	tracegen -inspect trace.csv
//	tracegen -inspect msr_trace.csv -format msr
//	tracegen -inspect vdi.jsonl -format jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"srcsim/internal/sim"
	"srcsim/internal/trace"
	"srcsim/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	kind := flag.String("kind", "micro", "micro | synthetic | vdi | cbs")
	count := flag.Int("count", 5000, "requests per direction")
	ia := flag.Duration("ia", 10*time.Microsecond, "mean inter-arrival per direction")
	size := flag.Int("size", 32<<10, "mean request size in bytes")
	iaSCV := flag.Float64("ia-scv", 4.0, "inter-arrival SCV (synthetic)")
	sizeSCV := flag.Float64("size-scv", 2.0, "request-size SCV (synthetic)")
	acf := flag.Float64("acf", 0.2, "inter-arrival lag-1 autocorrelation (synthetic)")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("o", "", "output CSV path (default stdout)")
	inspect := flag.String("inspect", "", "print statistics of an existing trace file and exit")
	format := flag.String("format", "csv", "trace encoding: csv | jsonl (open trace format) when generating; csv | msr (MSR Cambridge / SNIA) | jsonl when inspecting")
	flag.Parse()

	if *inspect != "" {
		f, err := os.Open(*inspect)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		var tr *trace.Trace
		switch *format {
		case "csv":
			tr, err = trace.ReadCSV(f)
		case "msr":
			tr, err = trace.ReadMSR(f)
		case "jsonl":
			tr, err = trace.ReadJSONL(f)
		default:
			log.Fatalf("unknown format %q", *format)
		}
		if err != nil {
			log.Fatal(err)
		}
		s := trace.Extract(tr)
		fmt.Printf("%s\n", s)
		fmt.Printf("read:  n=%d meanSize=%.0fB sizeSCV=%.2f meanIA=%.1fus iaSCV=%.2f acf1=%.2f flow=%.2f MB/s\n",
			s.Read.Count, s.Read.MeanSize, s.Read.SizeSCV,
			s.Read.MeanInterArrival/1000, s.Read.InterArrivalSCV, s.Read.InterArrivalACF1,
			s.Read.FlowSpeed/1e6)
		fmt.Printf("write: n=%d meanSize=%.0fB sizeSCV=%.2f meanIA=%.1fus iaSCV=%.2f acf1=%.2f flow=%.2f MB/s\n",
			s.Write.Count, s.Write.MeanSize, s.Write.SizeSCV,
			s.Write.MeanInterArrival/1000, s.Write.InterArrivalSCV, s.Write.InterArrivalACF1,
			s.Write.FlowSpeed/1e6)
		return
	}

	write, err := encoderFor(*format)
	if err != nil {
		log.Fatal(err)
	}

	tr, err := buildTrace(*kind, *seed, *count, sim.Time(ia.Nanoseconds()), *size, *iaSCV, *sizeSCV, *acf)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := write(w, tr); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d requests (%s) to %s\n", tr.Len(), tr.Duration(), *out)
	}
}

// encoderFor maps a -format value to its trace writer.
func encoderFor(format string) (func(io.Writer, *trace.Trace) error, error) {
	switch format {
	case "csv":
		return trace.WriteCSV, nil
	case "jsonl":
		return trace.WriteJSONL, nil
	default:
		return nil, fmt.Errorf("unknown output format %q (want csv or jsonl)", format)
	}
}

// buildTrace generates the requested trace kind with the shared knobs;
// kinds that don't use a knob ignore it (vdi/cbs take only seed+count).
func buildTrace(kind string, seed uint64, count int, meanIA sim.Time, size int, iaSCV, sizeSCV, acf float64) (*trace.Trace, error) {
	switch kind {
	case "micro":
		return workload.Micro(workload.MicroConfig{
			Seed:      seed,
			ReadCount: count, WriteCount: count,
			ReadInterArrival: meanIA, WriteInterArrival: meanIA,
			ReadMeanSize: size, WriteMeanSize: size,
		})
	case "synthetic":
		return workload.Synthetic(workload.SyntheticConfig{
			Seed:      seed,
			ReadCount: count, WriteCount: count,
			ReadInterArrival: meanIA, WriteInterArrival: meanIA,
			ReadInterArrivalSCV: iaSCV, WriteInterArrivalSCV: iaSCV,
			ReadACF1: acf, WriteACF1: acf,
			ReadMeanSize: size, WriteMeanSize: size,
			ReadSizeSCV: sizeSCV, WriteSizeSCV: sizeSCV,
		})
	case "vdi":
		return workload.VDILike(seed, count)
	case "cbs":
		return workload.CBSLike(seed, count)
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}
