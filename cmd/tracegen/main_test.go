package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

// TestGenerateJSONLRoundTrip: every generator kind encoded with
// -format jsonl must decode back through the strict reader to the
// exact same request stream.
func TestGenerateJSONLRoundTrip(t *testing.T) {
	write, err := encoderFor("jsonl")
	if err != nil {
		t.Fatal(err)
	}
	ia := sim.Time((10 * time.Microsecond).Nanoseconds())
	for _, kind := range []string{"micro", "synthetic", "vdi", "cbs"} {
		tr, err := buildTrace(kind, 1, 200, ia, 32<<10, 4, 2, 0.2)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		var buf bytes.Buffer
		if err := write(&buf, tr); err != nil {
			t.Fatalf("%s: encode: %v", kind, err)
		}
		rt, err := trace.ReadJSONL(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", kind, err)
		}
		if rt.Len() != tr.Len() {
			t.Fatalf("%s: round-trip length %d != %d", kind, rt.Len(), tr.Len())
		}
		for i := range tr.Requests {
			if rt.Requests[i] != tr.Requests[i] {
				t.Fatalf("%s: request %d: %+v != %+v", kind, i, rt.Requests[i], tr.Requests[i])
			}
		}
	}
}

func TestGenerateJSONLDeterministic(t *testing.T) {
	write, err := encoderFor("jsonl")
	if err != nil {
		t.Fatal(err)
	}
	ia := sim.Time((10 * time.Microsecond).Nanoseconds())
	var a, b bytes.Buffer
	for _, buf := range []*bytes.Buffer{&a, &b} {
		tr, err := buildTrace("micro", 7, 100, ia, 16<<10, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := write(buf, tr); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different jsonl bytes")
	}
	if !strings.HasPrefix(a.String(), `{"format":"srcsim-trace"`) {
		t.Fatalf("missing header line: %q", a.String()[:min(len(a.String()), 80)])
	}
}

func TestEncoderForErrors(t *testing.T) {
	if _, err := encoderFor("msr"); err == nil {
		t.Fatal("msr is inspect-only; encoding should fail")
	}
	if _, err := encoderFor("bogus"); err == nil {
		t.Fatal("bogus format should fail")
	}
}

func TestBuildTraceErrors(t *testing.T) {
	if _, err := buildTrace("bogus", 1, 10, sim.Microsecond, 4096, 1, 1, 0); err == nil {
		t.Fatal("bogus kind should fail")
	}
}
