// Command tpmtrain trains and evaluates the throughput prediction model:
// the five-regressor comparison of Table I, the grouped cross-validation
// of Table III, and the Breiman feature-importance analysis of
// Sec. III-B.
//
// Usage:
//
//	tpmtrain -table1 [-ssd A] [-count 2500] [-seed 1]
//	tpmtrain -table3 [-traces 24]
//	tpmtrain -importance
//	tpmtrain -save tpm.bin -array  (persist a model for srcsim -tpm; -array
//	                                matches the congestion testbed's device)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"srcsim/internal/devrun"
	"srcsim/internal/harness"
	"srcsim/internal/ssd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tpmtrain: ")

	table1 := flag.Bool("table1", false, "run the Table I regressor comparison")
	table3 := flag.Bool("table3", false, "run the Table III grouped cross-validation")
	importance := flag.Bool("importance", false, "report TPM feature importances")
	device := flag.String("ssd", "A", "Table II device: A, B, or C")
	count := flag.Int("count", 2500, "requests per direction per training run")
	traces := flag.Int("traces", 24, "synthetic pool size for table3")
	seed := flag.Uint64("seed", 1, "seed")
	save := flag.String("save", "", "train a TPM on the chosen device and write it to this path")
	array := flag.Bool("array", false, "use the harness target-array geometry (4ch x 4 dies) — required for models fed to srcsim -tpm")
	flag.Parse()

	if !*table1 && !*table3 && !*importance && *save == "" {
		*table1, *table3, *importance = true, true, true
	}

	var cfg ssd.Config
	switch *device {
	case "A":
		cfg = ssd.ConfigA()
	case "B":
		cfg = ssd.ConfigB()
	case "C":
		cfg = ssd.ConfigC()
	default:
		log.Fatalf("unknown SSD %q (want A, B, or C)", *device)
	}
	if *array {
		cfg = harness.TargetArrayConfig(cfg)
	}

	if *table1 {
		rows, err := harness.TableI(cfg, *count, *seed)
		if err != nil {
			log.Fatal(err)
		}
		harness.FprintTableI(os.Stdout, rows)
		fmt.Println()
	}
	if *table3 {
		rows, err := harness.TableIII(cfg, *count, *traces, *seed)
		if err != nil {
			log.Fatal(err)
		}
		harness.FprintTableIII(os.Stdout, rows)
		fmt.Println()
	}
	if *save != "" {
		tpm, samples, err := devrun.TrainTPM(cfg, *count, *seed)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		if err := tpm.Save(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved TPM (%d training samples) to %s\n", len(samples), *save)
	}
	if *importance {
		tpm, samples, err := devrun.TrainTPM(cfg, *count, *seed)
		if err != nil {
			log.Fatal(err)
		}
		names, weights, ok := tpm.FeatureImportances()
		if !ok {
			log.Fatal("importances unavailable")
		}
		fmt.Printf("Breiman feature importances (%d training samples):\n", len(samples))
		for i, n := range names {
			fmt.Printf("  %-28s %.3f\n", n, weights[i])
		}
	}
}
