// Command obsdiff compares the metrics of two runs or campaigns and
// fails when they diverge beyond configured tolerances — a metrics-level
// regression gate to complement byte-identity checks on reports.
//
// Usage:
//
//	obsdiff A B                     compare two metric sources
//	obsdiff -rel 0.01 A B           tolerate 1% relative drift
//	obsdiff -rel 0.01 -abs 1e-9 A B ...and absolute noise below 1e-9
//	obsdiff -json A B               machine-readable diff
//
// A and B each name one of:
//
//	metrics.json     a registry snapshot (srcsim -metrics, sweep output)
//	aggregate.json   a campaign record; per-job snapshots are merged in
//	                 job order, reproducing the campaign's metrics.json
//	<directory>      a sweep output directory (metrics.json preferred,
//	                 aggregate.json as fallback)
//
// Counters and gauges compare directly; histograms compare per digest
// field (count, mean, p50, p99, p999, min, max). A series present on
// only one side is a breach unless -ignore-missing.
//
// Exit codes:
//
//	0  no breach: every difference within tolerance
//	1  at least one breach (table on stdout, most divergent first)
//	2  usage or I/O error
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"text/tabwriter"

	"srcsim/internal/obs"
)

const (
	exitOK     = 0
	exitBreach = 1
	exitError  = 2
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("obsdiff: ")
	os.Exit(run())
}

func run() int {
	rel := flag.Float64("rel", 0, "relative-change tolerance: |b-a|/max(|a|,|b|) at or below this never breaches (0 = any change breaches)")
	abs := flag.Float64("abs", 0, "absolute-change tolerance: |b-a| at or below this never breaches (applied with -rel; both must be exceeded)")
	ignoreMissing := flag.Bool("ignore-missing", false, "series present on only one side are informational, not breaches")
	top := flag.Int("top", 20, "show at most this many non-breaching entries after the breaches (0 = all)")
	jsonOut := flag.Bool("json", false, "emit the full diff as JSON instead of a table")
	flag.Parse()

	if flag.NArg() != 2 {
		log.Print("need exactly two metric sources (metrics.json, aggregate.json, or a sweep output directory)")
		flag.Usage()
		return exitError
	}
	pathA, pathB := flag.Arg(0), flag.Arg(1)
	snapA, err := loadSnapshot(pathA)
	if err != nil {
		log.Print(err)
		return exitError
	}
	snapB, err := loadSnapshot(pathB)
	if err != nil {
		log.Print(err)
		return exitError
	}

	d := obs.DiffSnapshots(snapA, snapB, obs.DiffOptions{
		Rel:           *rel,
		Abs:           *abs,
		IgnoreMissing: *ignoreMissing,
	})

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			log.Print(err)
			return exitError
		}
	} else {
		printTable(d, *top, pathA, pathB)
	}

	if d.Breaches > 0 {
		log.Printf("%d metric(s) diverged beyond tolerance (rel %g, abs %g)", d.Breaches, *rel, *abs)
		return exitBreach
	}
	return exitOK
}

// printTable renders the diff, breaches first (always all of them),
// then up to top informational entries.
func printTable(d obs.Diff, top int, pathA, pathB string) {
	if len(d.Entries) == 0 {
		fmt.Printf("identical metrics: %s == %s\n", pathA, pathB)
		return
	}
	fmt.Printf("comparing A=%s B=%s: %d differing, %d breaching\n", pathA, pathB, len(d.Entries), d.Breaches)
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "\tSERIES\tA\tB\tABS\tREL")
	shown := 0
	for _, e := range d.Entries {
		mark := ""
		if e.Breach {
			mark = "!"
		} else {
			if top > 0 && shown >= top {
				continue
			}
			shown++
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%g\t%.4g\n",
			mark, e.Key, obs.FormatValue(e.A, e.PresentA), obs.FormatValue(e.B, e.PresentB), e.Abs, e.Rel)
	}
	w.Flush()
	if top > 0 && len(d.Entries)-d.Breaches > shown {
		fmt.Printf("(%d more within tolerance; -top 0 shows all)\n", len(d.Entries)-d.Breaches-shown)
	}
}

// loadSnapshot resolves a metric source: a sweep output directory, a
// snapshot file, or an aggregate file (sniffed by its "jobs" field and
// merged in job order, matching the sweep's own metrics.json).
func loadSnapshot(path string) (obs.Snapshot, error) {
	var zero obs.Snapshot
	fi, err := os.Stat(path)
	if err != nil {
		return zero, err
	}
	if fi.IsDir() {
		for _, name := range []string{"metrics.json", "aggregate.json"} {
			p := filepath.Join(path, name)
			if _, err := os.Stat(p); err == nil {
				return loadSnapshot(p)
			}
		}
		return zero, fmt.Errorf("obsdiff: %s: no metrics.json or aggregate.json", path)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return zero, err
	}

	// Sniff: an aggregate carries a "jobs" array, a snapshot does not.
	var probe struct {
		Jobs []struct {
			Output struct {
				Metrics *obs.Snapshot `json:"metrics"`
			} `json:"output"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(b, &probe); err == nil && probe.Jobs != nil {
		var snaps []obs.Snapshot
		for _, j := range probe.Jobs {
			if j.Output.Metrics != nil {
				snaps = append(snaps, *j.Output.Metrics)
			}
		}
		if len(snaps) == 0 {
			return zero, fmt.Errorf("obsdiff: %s: aggregate has no job metrics", path)
		}
		return obs.MergeSnapshots(snaps...), nil
	}

	var snap obs.Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return zero, fmt.Errorf("obsdiff: %s: %w", path, err)
	}
	if snap.NumSeries() == 0 {
		return zero, fmt.Errorf("obsdiff: %s: no metric series (wrong file?)", path)
	}
	return snap, nil
}
