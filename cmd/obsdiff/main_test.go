package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"srcsim/internal/obs"
)

func writeJSON(t *testing.T, path string, v any) {
	t.Helper()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func snapshot(marks float64) obs.Snapshot {
	return obs.Snapshot{
		Counters: map[string]float64{"netsim/ecn_marks": marks},
		Histograms: map[string]obs.HistogramSnapshot{
			"ssd/lat": {Count: 10, Mean: 5, P50: 4, P99: 9, P999: 9.5, Min: 1, Max: 10},
		},
	}
}

// TestLoadSnapshotForms: plain snapshots, aggregates (merged in job
// order), and sweep directories all resolve to comparable snapshots.
func TestLoadSnapshotForms(t *testing.T) {
	dir := t.TempDir()

	snapPath := filepath.Join(dir, "metrics.json")
	writeJSON(t, snapPath, snapshot(100))

	s, err := loadSnapshot(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if s.Counters["netsim/ecn_marks"] != 100 {
		t.Fatalf("snapshot load: %+v", s)
	}

	// Aggregate: two jobs whose counters must sum on merge.
	type output struct {
		Metrics *obs.Snapshot `json:"metrics,omitempty"`
	}
	type job struct {
		ID     string `json:"id"`
		Output output `json:"output"`
	}
	s1, s2 := snapshot(30), snapshot(70)
	agg := map[string]any{
		"campaign": "t",
		"jobs":     []job{{ID: "a", Output: output{Metrics: &s1}}, {ID: "b", Output: output{Metrics: &s2}}},
	}
	aggPath := filepath.Join(dir, "aggregate.json")
	writeJSON(t, aggPath, agg)
	s, err = loadSnapshot(aggPath)
	if err != nil {
		t.Fatal(err)
	}
	if s.Counters["netsim/ecn_marks"] != 100 {
		t.Fatalf("aggregate merge: %+v", s)
	}
	if s.Histograms["ssd/lat"].Count != 20 {
		t.Fatalf("aggregate histogram merge: %+v", s.Histograms["ssd/lat"])
	}

	// Directory: metrics.json wins over aggregate.json.
	s, err = loadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Counters["netsim/ecn_marks"] != 100 || s.Histograms["ssd/lat"].Count != 10 {
		t.Fatalf("directory load took the wrong file: %+v", s)
	}

	// Errors: garbage and empty snapshots are refused.
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{}"), 0o644)
	if _, err := loadSnapshot(bad); err == nil {
		t.Fatal("empty snapshot accepted")
	}
	if _, err := loadSnapshot(filepath.Join(dir, "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestDiffGate: identical sources pass; a perturbed counter breaches;
// a tolerance wide enough absorbs the perturbation.
func TestDiffGate(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	writeJSON(t, a, snapshot(100))
	writeJSON(t, b, snapshot(101))

	sa, err := loadSnapshot(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := loadSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}

	if d := obs.DiffSnapshots(sa, sa, obs.DiffOptions{}); d.Breaches != 0 {
		t.Fatalf("self-diff breaches: %+v", d)
	}
	if d := obs.DiffSnapshots(sa, sb, obs.DiffOptions{}); d.Breaches != 1 {
		t.Fatalf("perturbed diff: %+v", d)
	}
	if d := obs.DiffSnapshots(sa, sb, obs.DiffOptions{Rel: 0.02}); d.Breaches != 0 {
		t.Fatalf("tolerant diff: %+v", d)
	}
}
