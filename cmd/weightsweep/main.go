// Command weightsweep regenerates Fig. 5: read/write throughput across
// SSQ weight ratios for the 4×4 grid of micro workloads (inter-arrival
// 10-25 µs × request size 10-40 KB) on a chosen Table II device.
//
// Usage:
//
//	weightsweep [-ssd A|B|C] [-count 2500] [-seed 1] [-maxw 8]
package main

import (
	"flag"
	"log"
	"os"

	"srcsim/internal/harness"
	"srcsim/internal/ssd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("weightsweep: ")

	device := flag.String("ssd", "A", "Table II device: A, B, or C")
	count := flag.Int("count", 2500, "requests per direction per cell")
	seed := flag.Uint64("seed", 1, "workload seed")
	maxW := flag.Int("maxw", 8, "largest weight ratio to sweep")
	flag.Parse()

	var cfg ssd.Config
	switch *device {
	case "A":
		cfg = ssd.ConfigA()
	case "B":
		cfg = ssd.ConfigB()
	case "C":
		cfg = ssd.ConfigC()
	default:
		log.Fatalf("unknown SSD %q (want A, B, or C)", *device)
	}

	ws := make([]int, 0, *maxW)
	for w := 1; w <= *maxW; w++ {
		ws = append(ws, w)
	}
	cells, err := harness.Fig5WeightSweep(cfg, ws, *count, *seed)
	if err != nil {
		log.Fatal(err)
	}
	harness.FprintFig5(os.Stdout, cells)
}
