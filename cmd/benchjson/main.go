// benchjson converts `go test -bench` output into the repo's
// schema-versioned BENCH_<n>.json format and compares two such files
// against regression thresholds. It is the machine half of
// scripts/bench.sh; see README.md for the workflow.
//
//	go test -run '^$' -bench . -benchmem . | benchjson parse > BENCH_1.json
//	benchjson compare BENCH_0.json BENCH_1.json
//
// compare exits non-zero when any gated benchmark regresses beyond the
// thresholds (ns/op or allocs/op), so CI can consume it directly.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the BENCH_*.json layout; bump on incompatible
// changes so downstream tooling can reject files it does not understand.
const Schema = 1

// Entry is one benchmark's measurements. HeapBytes is the heap
// high-water custom metric (heap-B) reported by the sim benchmarks;
// zero when the benchmark does not report it.
type Entry struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	HeapBytes   float64 `json:"heap_bytes,omitempty"`
}

// File is the BENCH_<n>.json document.
type File struct {
	Schema     int              `json:"schema"`
	GOOS       string           `json:"goos,omitempty"`
	GOARCH     string           `json:"goarch,omitempty"`
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		if err := parse(os.Stdin, os.Stdout); err != nil {
			fatal(err)
		}
	case "compare":
		if len(os.Args) != 4 {
			usage()
		}
		ok, err := compare(os.Args[2], os.Args[3], os.Stdout)
		if err != nil {
			fatal(err)
		}
		if !ok {
			os.Exit(1)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchjson parse < bench-output > BENCH_n.json")
	fmt.Fprintln(os.Stderr, "       benchjson compare BENCH_0.json BENCH_n.json")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse reads `go test -bench` text and emits the JSON document. Metric
// pairs after the iteration count are tokenized as (value, unit), so the
// order go test prints them in does not matter.
func parse(in *os.File, out *os.File) error {
	f := File{Schema: Schema, Benchmarks: map[string]Entry{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			f.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			f.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			f.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix so baselines compare across
		// machines with different core counts.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		e := Entry{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			case "heap-B":
				e.HeapBytes = v
			}
		}
		f.Benchmarks[name] = e
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(f.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// gates are the regression thresholds per benchmark: the hot-path
// experiments that the event-engine optimization must keep fast.
var gates = map[string]struct{ maxNsGrowth, maxAllocGrowth float64 }{
	"BenchmarkFig7Throughput":  {maxNsGrowth: 0.30, maxAllocGrowth: 0.20},
	"BenchmarkFig5WeightSweep": {maxNsGrowth: 0.30, maxAllocGrowth: 0.20},
}

func load(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %d, this tool understands %d", path, f.Schema, Schema)
	}
	return &f, nil
}

// compare prints a delta table for every benchmark present in both
// files and returns false when a gated benchmark regresses beyond its
// thresholds.
func compare(basePath, newPath string, out *os.File) (bool, error) {
	base, err := load(basePath)
	if err != nil {
		return false, err
	}
	cur, err := load(newPath)
	if err != nil {
		return false, err
	}
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return false, fmt.Errorf("no common benchmarks between %s and %s", basePath, newPath)
	}
	pct := func(old, new float64) string {
		if old == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", (new/old-1)*100)
	}
	ok := true
	fmt.Fprintf(out, "%-34s %14s %14s %9s %9s\n", "benchmark", "ns/op", "allocs/op", "Δns", "Δallocs")
	for _, name := range names {
		b, c := base.Benchmarks[name], cur.Benchmarks[name]
		fmt.Fprintf(out, "%-34s %14.0f %14.0f %9s %9s\n",
			name, c.NsPerOp, c.AllocsPerOp, pct(b.NsPerOp, c.NsPerOp), pct(b.AllocsPerOp, c.AllocsPerOp))
		g, gated := gates[name]
		if !gated {
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+g.maxNsGrowth) {
			fmt.Fprintf(out, "FAIL %s: ns/op %.0f exceeds baseline %.0f by more than %.0f%%\n",
				name, c.NsPerOp, b.NsPerOp, g.maxNsGrowth*100)
			ok = false
		}
		if b.AllocsPerOp > 0 && c.AllocsPerOp > b.AllocsPerOp*(1+g.maxAllocGrowth) {
			fmt.Fprintf(out, "FAIL %s: allocs/op %.0f exceeds baseline %.0f by more than %.0f%%\n",
				name, c.AllocsPerOp, b.AllocsPerOp, g.maxAllocGrowth*100)
			ok = false
		}
	}
	if ok {
		fmt.Fprintln(out, "PASS: all gated benchmarks within thresholds")
	}
	return ok, nil
}
