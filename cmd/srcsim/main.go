// Command srcsim runs the integrated DCQCN-only versus DCQCN-SRC
// experiments of the paper's evaluation: the motivation example (Fig. 2),
// the VDI congestion timeline (Figs. 7 and 8), the workload-intensity
// sensitivity study (Fig. 10), and the in-cast ratio analysis (Table IV).
//
// Usage:
//
//	srcsim -experiment fig7 [-requests 2000] [-seed 7] [-train 1500]
//	srcsim -experiment table4 [-seconds 0.08]
//	srcsim -experiment fig10 [-seconds 0.06]
//	srcsim -experiment fig2
//	srcsim -replay my.csv           (replay a tracegen CSV under both modes)
//
// Observability (any experiment or replay):
//
//	-metrics out.json         write a metrics-registry snapshot
//	-trace out.trace.json     write a Chrome trace (chrome://tracing, Perfetto)
//	-progress 100ms           periodic status line on stderr (sim-time interval)
//
// Fault injection (any experiment or replay):
//
//	-faults chaos.json        replay a deterministic fault schedule
//	                          (see internal/faults and EXPERIMENTS.md)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"srcsim/internal/cluster"
	"srcsim/internal/core"
	"srcsim/internal/faults"
	"srcsim/internal/harness"
	"srcsim/internal/netsim"
	"srcsim/internal/obs"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("srcsim: ")

	experiment := flag.String("experiment", "fig7", "fig2 | fig7 | fig10 | table4")
	requests := flag.Int("requests", 2000, "write-request count for fig7 (reads get 2x)")
	seconds := flag.Float64("seconds", 0.06, "trace length in seconds for fig10/table4")
	seed := flag.Uint64("seed", 7, "workload seed")
	trainCount := flag.Int("train", 1500, "per-direction request count for TPM training runs")
	replayFile := flag.String("replay", "", "replay a trace CSV (from cmd/tracegen) on the Sec. IV-D testbed instead of a named experiment")
	cc := flag.String("cc", "dcqcn", "congestion control: dcqcn | timely | none")
	format := flag.String("format", "csv", "trace file format for -replay: csv (tracegen) | msr (MSR Cambridge / SNIA)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON for -replay runs")
	tpmPath := flag.String("tpm", "", "load a pre-trained TPM (from tpmtrain -save) instead of training")
	faultsFile := flag.String("faults", "", "load a fault-injection schedule (JSON, see internal/faults) and replay it into every cluster run")
	metricsOut := flag.String("metrics", "", "write a metrics-registry JSON snapshot to this file")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file (open in chrome://tracing or Perfetto)")
	progressEvery := flag.Duration("progress", 0, "print a progress line to stderr every interval of sim time (e.g. 100ms; 0 disables)")
	flag.Parse()

	// Fail on a bad -experiment now, before minutes of TPM training.
	switch *experiment {
	case "fig2", "fig7", "fig10", "table4":
	default:
		log.Fatalf("unknown experiment %q (want fig2, fig7, fig10, or table4)", *experiment)
	}

	var faultSched *faults.Schedule
	if *faultsFile != "" {
		var err error
		faultSched, err = faults.LoadFile(*faultsFile)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %d fault events from %s\n", len(faultSched.Events), *faultsFile)
	}

	// Shared observability sinks, attached to every cluster run via the
	// harness spec mods; nil values keep all hooks no-ops.
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(0)
	}
	withObs := func(s *cluster.Spec) {
		s.Metrics = reg
		s.Trace = tracer
		s.Faults = faultSched
		if *progressEvery > 0 {
			s.Progress = os.Stderr
			s.ProgressEvery = sim.Time(*progressEvery)
		}
	}
	writeObs := func() {
		if reg != nil {
			f, err := os.Create(*metricsOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := reg.WriteJSON(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			snap := reg.Snapshot()
			fmt.Fprintf(os.Stderr, "wrote %d metric series to %s\n", snap.NumSeries(), *metricsOut)
		}
		if tracer != nil {
			f, err := os.Create(*traceOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := tracer.WriteChromeTrace(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %d trace events (%d dropped) to %s\n",
				tracer.Len(), tracer.Dropped(), *traceOut)
		}
	}

	var ccAlg netsim.CCAlg
	switch *cc {
	case "dcqcn":
		ccAlg = netsim.CCDCQCN
	case "timely":
		ccAlg = netsim.CCTIMELY
	case "none":
		ccAlg = netsim.CCNone
	default:
		log.Fatalf("unknown congestion control %q", *cc)
	}

	if *experiment == "fig2" {
		harness.FprintFig2(os.Stdout, harness.Fig2Motivation(harness.DefaultFig2Params()))
		return
	}

	var tpm *core.TPM
	if *tpmPath != "" {
		f, err := os.Open(*tpmPath)
		if err != nil {
			log.Fatal(err)
		}
		tpm, err = core.LoadTPM(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded TPM from %s\n", *tpmPath)
	} else {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "training TPM (SSD-A target array)...\n")
		var samples []core.Sample
		var err error
		tpm, samples, err = harness.TrainCongestionTPM(*trainCount, *seed^0xbeef)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trained on %d samples in %v\n", len(samples), time.Since(start))
	}

	if *replayFile != "" {
		f, err := os.Open(*replayFile)
		if err != nil {
			log.Fatal(err)
		}
		var tr *trace.Trace
		switch *format {
		case "csv":
			tr, err = trace.ReadCSV(f)
		case "msr":
			tr, err = trace.ReadMSR(f)
		default:
			log.Fatalf("unknown trace format %q", *format)
		}
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		spec := harness.CongestionSpec()
		spec.Net.CC = ccAlg
		base, src, err := cluster.CompareModes(spec, tpm, tr, nil, withObs)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range []*cluster.Result{base, src} {
			if *jsonOut {
				if err := r.WriteJSON(os.Stdout); err != nil {
					log.Fatal(err)
				}
				continue
			}
			fmt.Printf("%-11s read %5.2f Gbps | write %5.2f Gbps | aggregated %5.2f Gbps | p50/p99 read lat %.2f/%.2f ms | pauses %d\n",
				r.Mode, r.MeanReadGbps, r.MeanWriteGbps, r.AggregatedGbps,
				r.ReadLatencyP50Ms, r.ReadLatencyP99Ms, r.TotalCNPs)
		}
		writeObs()
		return
	}

	switch *experiment {
	case "fig7":
		res, err := harness.Fig7ThroughputCC(tpm, *requests, *seed, ccAlg, withObs)
		if err != nil {
			log.Fatal(err)
		}
		harness.FprintFig7(os.Stdout, res)
		fmt.Println()
		harness.FprintFig8(os.Stdout, res)
	case "fig10":
		rows, err := harness.Fig10Intensity(tpm, *seconds, *seed, withObs)
		if err != nil {
			log.Fatal(err)
		}
		harness.FprintFig10(os.Stdout, rows)
	case "table4":
		rows, err := harness.TableIV(tpm, nil, *seconds, *seed, withObs)
		if err != nil {
			log.Fatal(err)
		}
		harness.FprintTableIV(os.Stdout, rows)
	default:
		log.Fatalf("unknown experiment %q (want fig2, fig7, fig10, or table4)", *experiment)
	}
	writeObs()
}
