// Command srcsim runs the integrated DCQCN-only versus DCQCN-SRC
// experiments of the paper's evaluation. Experiments come from the
// registry in internal/harness; `srcsim -list` enumerates them with
// their tunable parameters and defaults.
//
// Usage:
//
//	srcsim -list                    (enumerate registered experiments)
//	srcsim -list-cc                 (enumerate congestion-control schemes)
//	srcsim -experiment fig7 [-requests 2000] [-seed 7] [-train 1500] [-cc hpcc]
//	srcsim -experiment cc-matrix    (CC scheme x SRC on/off retention matrix)
//	srcsim -experiment table4 [-seconds 0.08]
//	srcsim -experiment fig10 [-seconds 0.06]
//	srcsim -experiment fig2
//	srcsim -list-scenarios          (enumerate the composed scenario library)
//	srcsim -scenario vdi-boot-storm (run a library scenario under both modes)
//	srcsim -replay my.csv           (replay a tracegen CSV under both modes)
//	srcsim -replay t.jsonl -format jsonl   (replay an open-format JSONL trace)
//
// Experiments that need a trained throughput-prediction model train one
// lazily (or load -tpm); training results are reused across runs through
// the content-addressed artifact cache (SRCSIM_TPM_CACHE=off disables,
// SRCSIM_TPM_CACHE=<dir> relocates; default is <tmp>/srcsim-cache).
//
// Observability (any experiment or replay):
//
//	-metrics out.json         write a metrics-registry snapshot
//	-trace out.trace.json     write a Chrome trace (chrome://tracing, Perfetto)
//	-record out.csv           flight recorder: sample every counter/gauge and
//	                          the per-flow/per-target congestion signals on
//	                          the sim clock; .csv long format, .jsonl columnar,
//	                          any other extension Chrome-trace counter events
//	-record-interval 100us    flight-recorder sample period (sim time)
//	-record-cap 16384         ring capacity per recorded series
//	-serve :8080              live inspector: /metrics (Prometheus text),
//	                          /series (recorder JSON), /progress
//	-serve-grace 5s           keep the inspector up after the run (wall time)
//	-progress 100ms           periodic status line on stderr (sim-time interval)
//
// Fault injection & adaptation (any experiment or replay):
//
//	-faults chaos.json        replay a deterministic fault schedule
//	                          (see internal/faults and EXPERIMENTS.md)
//	-adapt                    arm adaptive SRC (in-run retraining +
//	                          degradation ladder; see DESIGN.md); the
//	                          adapt-aging/adapt-phase/adapt-failover
//	                          experiments arm their own tuning
//
// Run governance (any experiment or replay; see internal/guard):
//
//	-audit=false              disable the conservation auditor
//	-stall-horizon 200ms      arm the liveness watchdog (sim-time horizon)
//	-max-wall 10m             truncate gracefully after this much wall time
//
// SIGINT/SIGTERM also truncate gracefully: the current run drains at the
// next event boundary and partial results (marked "truncated") plus all
// -metrics/-trace artifacts are still written. All file artifacts are
// written atomically (temp file + rename), so an interrupted run never
// leaves a half-written file.
//
// Exit codes:
//
//	0  success
//	1  configuration, I/O, or internal error
//	2  guard failure: liveness stall (diagnostic dump on stderr) or
//	   conservation-invariant violation
//	3  run truncated (SIGINT, SIGTERM, or -max-wall); partial results
//	   and artifacts were written
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"srcsim/internal/atomicio"
	"srcsim/internal/cluster"
	"srcsim/internal/core"
	"srcsim/internal/devrun"
	"srcsim/internal/faults"
	"srcsim/internal/guard"
	"srcsim/internal/harness"
	"srcsim/internal/netsim"
	"srcsim/internal/obs"
	"srcsim/internal/obs/live"
	"srcsim/internal/obs/timeseries"
	"srcsim/internal/scenario"
	"srcsim/internal/sim"
	"srcsim/internal/trace"
)

// Exit codes; keep in sync with the package comment and README.
const (
	exitOK        = 0
	exitError     = 1
	exitGuard     = 2
	exitTruncated = 3
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("srcsim: ")
	os.Exit(run())
}

// fail classifies err into an exit code, printing it (and, for a
// liveness stall, the diagnostic dump) to stderr.
func fail(err error) int {
	var se *guard.StallError
	if errors.As(err, &se) {
		log.Print(err)
		if se.Dump != nil {
			fmt.Fprintln(os.Stderr, "guard dump:")
			se.Dump.WriteTo(os.Stderr)
		}
		return exitGuard
	}
	var ve *guard.ViolationError
	if errors.As(err, &ve) {
		log.Print(err)
		return exitGuard
	}
	log.Print(err)
	return exitError
}

func run() int {
	experiment := flag.String("experiment", "fig7", "registered experiment to run (see -list)")
	list := flag.Bool("list", false, "list registered experiments with their parameters and exit")
	listCC := flag.Bool("list-cc", false, "list registered congestion-control schemes and exit")
	listScenarios := flag.Bool("list-scenarios", false, "list the built-in composed scenario library and exit")
	scenarioName := flag.String("scenario", "", "run a library scenario by name, or a scenario spec by .json path (shorthand for -experiment scenario; see -list-scenarios)")
	// requests/seconds/seed/cc reach experiments through the override
	// overlay below (flag.Visit), not through direct reads.
	flag.Int("requests", 2000, "write-request count for fig7/chaos-soak (reads get 2x)")
	flag.Float64("seconds", 0.06, "trace length in seconds for fig10/table4")
	seed := flag.Uint64("seed", 7, "workload seed")
	trainCount := flag.Int("train", 1500, "per-direction request count for TPM training runs")
	replayFile := flag.String("replay", "", "replay a trace CSV (from cmd/tracegen) on the Sec. IV-D testbed instead of a named experiment")
	cc := flag.String("cc", "dcqcn", "congestion control: "+strings.Join(netsim.CCNames(), " | ")+" (see -list-cc)")
	format := flag.String("format", "csv", "trace file format for -replay: csv (tracegen) | msr (MSR Cambridge / SNIA) | jsonl (open trace format)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON for -replay runs")
	tpmPath := flag.String("tpm", "", "load a pre-trained TPM (from tpmtrain -save) instead of training")
	faultsFile := flag.String("faults", "", "load a fault-injection schedule (JSON, see internal/faults) and replay it into every cluster run")
	adapt := flag.Bool("adapt", false, "arm adaptive SRC (in-run TPM retraining + degradation ladder, default tuning) on every cluster run; the adapt-* experiments tune it themselves")
	metricsOut := flag.String("metrics", "", "write a metrics-registry JSON snapshot to this file")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file (open in chrome://tracing or Perfetto)")
	recordOut := flag.String("record", "", "write the flight-recorder congestion timeline to this file (.csv long format, .jsonl columnar, anything else Chrome-trace counter JSON)")
	recordInterval := flag.Duration("record-interval", 100*time.Microsecond, "flight-recorder sample period in sim time")
	recordCap := flag.Int("record-cap", timeseries.DefaultCapacity, "flight-recorder ring capacity (max samples kept per series)")
	serveAddr := flag.String("serve", "", "serve the live inspector (/metrics Prometheus text, /series JSON, /progress) on this address during the run, e.g. :8080")
	serveGrace := flag.Duration("serve-grace", 0, "keep the live inspector up this long (wall time) after the run finishes before exiting")
	progressEvery := flag.Duration("progress", 0, "print a progress line to stderr every interval of sim time (e.g. 100ms; 0 disables)")
	audit := flag.Bool("audit", true, "run the conservation auditor on every cluster run (read-only; a violation fails the run)")
	stallHorizon := flag.Duration("stall-horizon", 0, "arm the liveness watchdog: fail with a diagnostic dump if the oldest in-flight command exceeds this sim-time age with no progress (0 disables)")
	maxWall := flag.Duration("max-wall", 0, "truncate the run gracefully after this much wall-clock time (0 = unlimited); partial results are still written")
	flag.Parse()

	if *list {
		harness.FprintExperiments(os.Stdout)
		return exitOK
	}
	if *listCC {
		netsim.FprintCCSchemes(os.Stdout)
		return exitOK
	}
	if *listScenarios {
		for _, sc := range scenario.Library() {
			fmt.Printf("%-22s %s\n", sc.Name, sc.Title)
		}
		return exitOK
	}
	if *scenarioName != "" {
		*experiment = "scenario"
	}

	// Fail on a bad -experiment now, before minutes of TPM training.
	exp, ok := harness.LookupExperiment(*experiment)
	if !ok && *replayFile == "" {
		log.Printf("unknown experiment %q (registered: %s; run srcsim -list)",
			*experiment, strings.Join(harness.ExperimentNames(), ", "))
		return exitError
	}

	// Graceful cancellation: SIGINT/SIGTERM and -max-wall share one
	// Stopper; the cluster drains at the next event boundary and the
	// partial result is marked truncated. A second signal falls through
	// to the default handler and kills the process.
	stopper := guard.NewStopper()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		signal.Stop(sigc)
		fmt.Fprintf(os.Stderr, "srcsim: %v: truncating run (again to kill)\n", s)
		stopper.Stop(fmt.Sprintf("signal: %v", s))
	}()
	if *maxWall > 0 {
		timer := time.AfterFunc(*maxWall, func() {
			stopper.Stop(fmt.Sprintf("wall budget %v exceeded", *maxWall))
		})
		defer timer.Stop()
	}

	var faultSched *faults.Schedule
	if *faultsFile != "" {
		var err error
		faultSched, err = faults.LoadFile(*faultsFile)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %d fault events from %s\n", len(faultSched.Events), *faultsFile)
	}

	// Shared observability sinks, attached to every cluster run via the
	// harness spec mods; nil values keep all hooks no-ops.
	var reg *obs.Registry
	if *metricsOut != "" || *serveAddr != "" {
		reg = obs.NewRegistry()
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(0)
	}
	var recorder *timeseries.Recorder
	if *recordOut != "" || *serveAddr != "" {
		recorder = timeseries.New(sim.Time(*recordInterval), *recordCap)
	}
	var board *live.Board
	if *serveAddr != "" {
		board = live.NewBoard()
		srv, err := live.Serve(*serveAddr, board)
		if err != nil {
			return fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "live inspector on http://%s (/metrics, /series, /progress)\n", srv.Addr())
		if *serveGrace > 0 {
			// Hold the inspector up after the run so scrapers racing a
			// short run still see the final state.
			defer time.Sleep(*serveGrace)
		}
	}
	withObs := func(s *cluster.Spec) {
		s.Metrics = reg
		s.Trace = tracer
		s.Recorder = recorder
		s.Board = board
		if faultSched != nil {
			// -faults replaces any schedule the experiment installed;
			// without the flag, scenarios that arm their own chaos
			// (adapt-*) keep it.
			s.Faults = faultSched
		}
		if *adapt && !s.SRC.Adaptive.Enabled {
			// Default tuning (core.AdaptiveConfig defaults); scenarios
			// that armed their own adaptive config keep it.
			s.SRC.Adaptive.Enabled = true
		}
		if *progressEvery > 0 {
			s.Progress = os.Stderr
			s.ProgressEvery = sim.Time(*progressEvery)
		}
		s.Guard.Audit = *audit
		s.Guard.StallHorizon = sim.Time(*stallHorizon)
		s.Guard.Stop = stopper
	}
	writeObs := func() error {
		if reg != nil && *metricsOut != "" {
			if err := atomicio.WriteFile(*metricsOut, reg.WriteJSON); err != nil {
				return err
			}
			snap := reg.Snapshot()
			fmt.Fprintf(os.Stderr, "wrote %d metric series to %s\n", snap.NumSeries(), *metricsOut)
		}
		if tracer != nil {
			if recorder != nil {
				// Fold the congestion timeline into the same trace so the
				// counter tracks render alongside the event spans.
				recorder.EmitChromeCounters(tracer.Scope("recorder"))
			}
			if err := atomicio.WriteFile(*traceOut, tracer.WriteChromeTrace); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %d trace events (%d dropped) to %s\n",
				tracer.Len(), tracer.Dropped(), *traceOut)
		}
		if recorder != nil && *recordOut != "" {
			write := recorder.WriteChromeTrace
			switch {
			case strings.HasSuffix(*recordOut, ".csv"):
				write = recorder.WriteCSV
			case strings.HasSuffix(*recordOut, ".jsonl"):
				write = recorder.WriteJSONL
			}
			if err := atomicio.WriteFile(*recordOut, write); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote flight-recorder timeline (%d series) to %s\n",
				len(recorder.Dump(1)), *recordOut)
		}
		return nil
	}
	// epilogue flushes artifacts and converts a stopper firing into the
	// truncated exit code.
	epilogue := func() int {
		if err := writeObs(); err != nil {
			return fail(err)
		}
		if stopper.Stopped() {
			log.Printf("run truncated: %s", stopper.Reason())
			return exitTruncated
		}
		return exitOK
	}

	// getTPM resolves the model an experiment declares, lazily: -tpm
	// loads a pre-trained file; otherwise training runs behind the
	// content-addressed artifact cache, so repeated invocations with the
	// same training inputs reuse the stored model.
	getTPM := func(kind harness.TPMKind) (*core.TPM, error) {
		if *tpmPath != "" {
			f, err := os.Open(*tpmPath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			tpm, err := core.LoadTPM(f)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "loaded TPM from %s\n", *tpmPath)
			return tpm, nil
		}
		cacheDir := devrun.TPMCacheFromEnv()
		start := time.Now()
		var tpm *core.TPM
		var hit bool
		var err error
		switch kind {
		case harness.TPMFig9:
			fmt.Fprintf(os.Stderr, "training TPM (Fig. 9 SSD-B array)...\n")
			tpm, hit, err = devrun.TrainTPMCached(cacheDir, harness.Fig9Config(), *trainCount, *seed^0xbeef)
		default:
			fmt.Fprintf(os.Stderr, "training TPM (SSD-A target array)...\n")
			tpm, hit, err = harness.TrainCongestionTPMCached(cacheDir, *trainCount, *seed^0xbeef)
		}
		if err != nil {
			return nil, err
		}
		if hit {
			fmt.Fprintf(os.Stderr, "reused cached TPM (%s=off forces retraining)\n", devrun.TPMCacheEnv)
		} else {
			fmt.Fprintf(os.Stderr, "trained in %v\n", time.Since(start))
		}
		return tpm, nil
	}
	env := &harness.Env{TPM: getTPM, Mods: []func(*cluster.Spec){withObs}}

	if *replayFile != "" {
		ccAlg, err := harness.ParseCC(*cc)
		if err != nil {
			log.Print(err)
			return exitError
		}
		f, err := os.Open(*replayFile)
		if err != nil {
			return fail(err)
		}
		var tr *trace.Trace
		switch *format {
		case "csv":
			tr, err = trace.ReadCSV(f)
		case "msr":
			tr, err = trace.ReadMSR(f)
		case "jsonl":
			tr, err = trace.ReadJSONL(f)
		default:
			f.Close()
			log.Printf("unknown trace format %q", *format)
			return exitError
		}
		f.Close()
		if err != nil {
			return fail(err)
		}
		tpm, err := getTPM(harness.TPMCongestion)
		if err != nil {
			return fail(err)
		}
		spec := harness.CongestionSpec()
		spec.Net.CC = ccAlg
		base, src, err := cluster.CompareModes(spec, tpm, tr, nil, withObs)
		if err != nil {
			return fail(err)
		}
		if *jsonOut {
			for _, r := range []*cluster.Result{base, src} {
				if err := r.WriteJSON(os.Stdout); err != nil {
					return fail(err)
				}
			}
		} else {
			harness.FprintReplay(os.Stdout, base, src)
		}
		return epilogue()
	}

	// Overlay explicitly set flags onto the experiment's declared
	// defaults; flags the experiment does not declare are ignored, so
	// e.g. -cc only affects experiments with a cc parameter.
	overrides := map[string]string{}
	if *scenarioName != "" {
		// A path selects a custom spec file; a bare word a library entry.
		if strings.ContainsRune(*scenarioName, '/') || strings.HasSuffix(*scenarioName, ".json") {
			overrides["file"] = *scenarioName
		} else {
			overrides["name"] = *scenarioName
		}
	}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "requests", "seconds", "seed", "cc":
			if _, ok := exp.Param(f.Name); ok {
				overrides[f.Name] = f.Value.String()
			}
		}
	})
	params, err := exp.Resolve(overrides)
	if err != nil {
		log.Print(err)
		return exitError
	}
	out, err := exp.Run(env, params)
	if err != nil {
		return fail(err)
	}
	os.Stdout.WriteString(out.Text)
	return epilogue()
}
